// Star Schema Benchmark (SSB [26]) data synthesis with BART-style error
// injection [5] (uniformly distributed edits so every query is affected).
//
// The lineorder generator preserves the FD orderkey -> suppkey in its clean
// version and then edits `error_rate` of the rows of each violating
// orderkey group, exactly matching the Section 7 setup. Prices carry a
// monotone discount schedule so the inequality DC of Fig. 10 holds on clean
// data; InjectDcErrors perturbs discounts to create a controlled number of
// violations.

#ifndef DAISY_DATAGEN_SSB_H_
#define DAISY_DATAGEN_SSB_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "storage/table.h"

namespace daisy {

/// How injected suppkey errors pick their wrong value.
enum class SsbErrorStyle {
  /// BART-style typo: a fresh out-of-domain supplier id per edit. Keeps
  /// the FD correlation clusters local to one orderkey group (default).
  kUniqueTypo,
  /// A random *existing* supplier id. Erroneous suppkeys then co-occur
  /// with many orderkeys, linking clusters and inflating candidate sets —
  /// the heavy-update scenario of Figs. 7/12.
  kInDomain,
};

/// Knobs for the lineorder table.
struct SsbConfig {
  size_t num_rows = 10000;
  size_t distinct_orderkeys = 1000;
  size_t distinct_suppkeys = 100;
  size_t distinct_partkeys = 200;
  size_t distinct_custkeys = 100;
  size_t distinct_dates = 365;
  /// Fraction of orderkeys whose groups receive suppkey errors.
  double violating_fraction = 1.0;
  /// Fraction of rows edited inside each violating group.
  double error_rate = 0.1;
  SsbErrorStyle error_style = SsbErrorStyle::kUniqueTypo;
  uint64_t seed = 42;
};

/// A generated table plus its clean ground truth.
struct GeneratedData {
  Table dirty;
  Table truth;
};

/// lineorder(orderkey, linenumber, custkey, partkey, suppkey, orderdate,
/// quantity, extended_price, discount, revenue).
GeneratedData GenerateLineorder(const SsbConfig& config);

/// supplier(suppkey, name, address, city, nation) with the FD
/// address -> suppkey; `violating_fraction` of the addresses get edited
/// suppkeys.
GeneratedData GenerateSupplier(size_t num_rows, size_t distinct_suppkeys,
                               double violating_fraction, double error_rate,
                               uint64_t seed);

/// Denormalized lineorder ⋈ supplier used by the multi-rule experiment
/// (Fig. 8): columns of lineorder plus address/city/nation, with both FDs
/// orderkey -> suppkey and address -> suppkey injected dirty.
GeneratedData GenerateDenormalizedLineorder(const SsbConfig& config,
                                            double supplier_violating_fraction);

/// part(partkey, brand, category), date(datekey, year, month),
/// customer(custkey, name, city, nation) — clean dimension tables for the
/// SSB query-complexity ladder (Fig. 13).
Table GeneratePart(size_t distinct_partkeys, uint64_t seed);
Table GenerateDate(size_t distinct_dates, uint64_t seed);
Table GenerateCustomer(size_t distinct_custkeys, uint64_t seed);

/// Perturbs the discounts of `fraction` of the rows so that the DC
/// ¬(t1.extended_price < t2.extended_price ∧ t1.discount > t2.discount)
/// gains violations; `magnitude` scales how far the dirty discounts stick
/// out (outliers spread across partitions, as in the paper's 20% case).
/// Returns the number of rows edited.
size_t InjectDcErrors(Table* lineorder, double fraction, double magnitude,
                      uint64_t seed);

}  // namespace daisy

#endif  // DAISY_DATAGEN_SSB_H_
