// Synthetic stand-ins for the paper's real-world datasets (see DESIGN.md
// substitutions): hospital [29], the Nestle product catalog, and the EPA
// historical air-quality measurements [1][34]. Each generator reproduces
// the structural property that drives the corresponding experiment.

#ifndef DAISY_DATAGEN_REALWORLD_H_
#define DAISY_DATAGEN_REALWORLD_H_

#include <cstdint>

#include "datagen/ssb.h"
#include "storage/table.h"

namespace daisy {

/// Hospital: 19 attributes, highly correlated entity columns, ~5% erroneous
/// cells among {city, zip, phone}. Rules used against it:
///   ϕ1: FD zip -> city
///   ϕ2: FD hospital_name -> zip
///   ϕ3: FD phone -> zip
struct HospitalConfig {
  size_t num_rows = 1000;
  size_t num_hospitals = 50;
  double cell_error_rate = 0.05;
  uint64_t seed = 7;
};
GeneratedData GenerateHospital(const HospitalConfig& config);

/// Nestle-like products: FD material -> category with very low category
/// selectivity (each category co-occurs with many materials), ~95% of the
/// material groups conflicting. 19 attributes like the original.
struct NestleConfig {
  size_t num_rows = 20000;
  size_t num_materials = 400;
  size_t num_categories = 12;
  double violating_fraction = 0.95;
  double error_rate = 0.1;
  uint64_t seed = 11;
};
GeneratedData GenerateNestle(const NestleConfig& config);

/// Air quality: hourly CO measurements keyed by (state_code, county_code)
/// with FD state_code, county_code -> county_name. A tiny cell error rate
/// concentrated on infrequent county pairs yields a large share of
/// violating groups (0.001% errors -> ~30% violations; 0.003% -> ~97%).
struct AirQualityConfig {
  size_t num_rows = 50000;
  size_t num_states = 52;
  size_t counties_per_state = 12;
  size_t num_years = 10;
  /// Fraction of county groups receiving an erroneous county_name row.
  double violating_group_fraction = 0.3;
  uint64_t seed = 13;
};
GeneratedData GenerateAirQuality(const AirQualityConfig& config);

}  // namespace daisy

#endif  // DAISY_DATAGEN_REALWORLD_H_
