#include "datagen/workload.h"

#include <algorithm>
#include <sstream>

namespace daisy {

namespace {

// Sorted distinct original values of a column.
Result<std::vector<Value>> DistinctSorted(const Table& table,
                                          const std::string& column) {
  DAISY_ASSIGN_OR_RETURN(size_t col, table.schema().ColumnIndex(column));
  std::vector<Value> values;
  values.reserve(table.num_rows());
  for (RowId r = 0; r < table.num_rows(); ++r) {
    values.push_back(table.cell(r, col).original());
  }
  std::sort(values.begin(), values.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  values.erase(std::unique(values.begin(), values.end(),
                           [](const Value& a, const Value& b) { return a == b; }),
               values.end());
  if (values.empty()) {
    return Status::InvalidArgument("column '" + column + "' has no values");
  }
  return values;
}

std::string Literal(const Value& v) {
  if (v.is_string()) return "'" + v.ToString() + "'";
  return v.ToString();
}

std::string RangeQuery(const std::string& select_list,
                       const std::string& table, const std::string& column,
                       const Value& lo, const Value& hi) {
  std::ostringstream oss;
  oss << "SELECT " << select_list << " FROM " << table << " WHERE " << column
      << " >= " << Literal(lo) << " AND " << column << " <= " << Literal(hi);
  return oss.str();
}

}  // namespace

Result<std::vector<std::string>> MakeNonOverlappingRangeQueries(
    const Table& table, const std::string& column, size_t num_queries,
    const std::string& select_list) {
  if (num_queries == 0) return Status::InvalidArgument("num_queries == 0");
  DAISY_ASSIGN_OR_RETURN(std::vector<Value> values,
                         DistinctSorted(table, column));
  std::vector<std::string> queries;
  queries.reserve(num_queries);
  const size_t n = values.size();
  for (size_t q = 0; q < num_queries; ++q) {
    const size_t begin = q * n / num_queries;
    size_t end = (q + 1) * n / num_queries;
    if (begin >= n) break;
    if (end == begin) end = begin + 1;
    queries.push_back(RangeQuery(select_list, table.name(), column,
                                 values[begin], values[end - 1]));
  }
  return queries;
}

Result<std::vector<std::string>> MakeRandomSelectivityQueries(
    const Table& table, const std::string& column, size_t num_queries,
    uint64_t seed, const std::string& select_list) {
  if (num_queries == 0) return Status::InvalidArgument("num_queries == 0");
  DAISY_ASSIGN_OR_RETURN(std::vector<Value> values,
                         DistinctSorted(table, column));
  Rng rng(seed);
  const size_t n = values.size();
  // Random non-overlapping split: draw num_queries-1 cut points.
  std::vector<size_t> cuts{0, n};
  for (size_t i = 0; i + 1 < num_queries; ++i) {
    cuts.push_back(static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1)));
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  std::vector<std::string> queries;
  for (size_t i = 0; i + 1 < cuts.size() && queries.size() < num_queries;
       ++i) {
    const size_t begin = cuts[i];
    const size_t end = std::max(cuts[i + 1], begin + 1);
    if (begin >= n) break;
    if (end - begin == 1 || rng.Bernoulli(0.2)) {
      // Equality predicate.
      std::ostringstream oss;
      oss << "SELECT " << select_list << " FROM " << table.name() << " WHERE "
          << column << " = " << Literal(values[begin]);
      queries.push_back(oss.str());
    } else {
      queries.push_back(RangeQuery(select_list, table.name(), column,
                                   values[begin],
                                   values[std::min(end, n) - 1]));
    }
  }
  return queries;
}

Result<std::vector<std::string>> MakePointQueries(
    const Table& table, const std::string& column, size_t num_queries,
    const std::string& select_list) {
  DAISY_ASSIGN_OR_RETURN(std::vector<Value> values,
                         DistinctSorted(table, column));
  std::vector<std::string> queries;
  queries.reserve(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    const Value& v = values[q % values.size()];
    std::ostringstream oss;
    oss << "SELECT " << select_list << " FROM " << table.name() << " WHERE "
        << column << " = " << Literal(v);
    queries.push_back(oss.str());
  }
  return queries;
}

}  // namespace daisy
