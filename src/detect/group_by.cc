#include "detect/group_by.h"

namespace daisy {

GroupKey MakeGroupKey(const Table& table, RowId r,
                      const std::vector<size_t>& columns) {
  GroupKey key;
  key.reserve(columns.size());
  for (size_t c : columns) key.push_back(table.cell(r, c).original());
  return key;
}

GroupMap GroupRowsBy(const Table& table, const std::vector<size_t>& columns,
                     const std::vector<RowId>& rows) {
  GroupMap groups;
  groups.reserve(rows.size());
  for (RowId r : rows) {
    groups[MakeGroupKey(table, r, columns)].push_back(r);
  }
  return groups;
}

GroupMap GroupAllRowsBy(const Table& table,
                        const std::vector<size_t>& columns) {
  return GroupRowsBy(table, columns, table.AllRowIds());
}

}  // namespace daisy
