#include "detect/group_by.h"

namespace daisy {

GroupKey MakeGroupKey(const Table& table, RowId r,
                      const std::vector<size_t>& columns) {
  GroupKey key;
  key.reserve(columns.size());
  for (size_t c : columns) key.push_back(table.cell(r, c).original());
  return key;
}

namespace {

struct CodeKeyHash {
  size_t operator()(const std::vector<uint32_t>& key) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (uint32_t c : key) {
      h ^= static_cast<size_t>(c) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

// Single-column grouping straight off the dictionary codes. Dense buckets
// when the dictionary is comparable to the row subset, a sparse map when a
// small subset probes a wide dictionary.
GroupMap GroupBySingleColumn(const ColumnCache::Column& col,
                             const std::vector<RowId>& rows) {
  GroupMap groups;
  if (col.dict.size() <= rows.size() * 2 + 16) {
    std::vector<std::vector<RowId>> buckets(col.dict.size());
    for (RowId r : rows) buckets[col.codes[r]].push_back(r);
    groups.reserve(rows.size());
    for (uint32_t code = 0; code < buckets.size(); ++code) {
      if (buckets[code].empty()) continue;
      groups.emplace(GroupKey{col.dict[code]}, std::move(buckets[code]));
    }
  } else {
    std::unordered_map<uint32_t, std::vector<RowId>> buckets;
    buckets.reserve(rows.size());
    for (RowId r : rows) buckets[col.codes[r]].push_back(r);
    groups.reserve(buckets.size());
    for (auto& [code, members] : buckets) {
      groups.emplace(GroupKey{col.dict[code]}, std::move(members));
    }
  }
  return groups;
}

}  // namespace

GroupMap GroupRowsBy(const Table& table, const std::vector<size_t>& columns,
                     const std::vector<RowId>& rows) {
  if (columns.empty()) return GroupRowsByRowPath(table, columns, rows);
  ColumnCache& cache = table.columns();
  if (columns.size() == 1) {
    return GroupBySingleColumn(cache.column(columns[0]), rows);
  }
  std::vector<const ColumnCache::Column*> cols;
  cols.reserve(columns.size());
  for (size_t c : columns) cols.push_back(&cache.column(c));

  std::unordered_map<std::vector<uint32_t>, std::vector<RowId>, CodeKeyHash>
      buckets;
  buckets.reserve(rows.size());
  std::vector<uint32_t> code_key(columns.size());
  for (RowId r : rows) {
    for (size_t i = 0; i < cols.size(); ++i) code_key[i] = cols[i]->codes[r];
    buckets[code_key].push_back(r);
  }
  GroupMap groups;
  groups.reserve(buckets.size());
  for (auto& [codes, members] : buckets) {
    GroupKey key;
    key.reserve(codes.size());
    for (size_t i = 0; i < codes.size(); ++i) {
      key.push_back(cols[i]->dict[codes[i]]);
    }
    groups.emplace(std::move(key), std::move(members));
  }
  return groups;
}

GroupMap GroupAllRowsBy(const Table& table,
                        const std::vector<size_t>& columns) {
  return GroupRowsBy(table, columns, table.AllRowIds());
}

GroupMap GroupRowsByRowPath(const Table& table,
                            const std::vector<size_t>& columns,
                            const std::vector<RowId>& rows) {
  GroupMap groups;
  groups.reserve(rows.size());
  for (RowId r : rows) {
    groups[MakeGroupKey(table, r, columns)].push_back(r);
  }
  return groups;
}

}  // namespace daisy
