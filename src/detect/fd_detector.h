// FD violation detection via hash group-by (the BigDansing optimization:
// group on the FD's lhs instead of a self-join, O(n) instead of O(n^2)).

#ifndef DAISY_DETECT_FD_DETECTOR_H_
#define DAISY_DETECT_FD_DETECTOR_H_

#include <vector>

#include "constraints/denial_constraint.h"
#include "detect/group_by.h"
#include "storage/table.h"

namespace daisy {

/// All rows sharing one lhs value combination, with the distinct rhs values
/// observed. The group violates the FD iff it has >1 distinct rhs.
struct FdGroup {
  GroupKey lhs_key;
  std::vector<RowId> rows;
  /// Distinct rhs values with their in-group frequencies, descending count.
  std::vector<std::pair<Value, size_t>> rhs_histogram;

  bool violating() const { return rhs_histogram.size() > 1; }
  size_t total() const { return rows.size(); }
};

/// Detects FD violations among `rows`. Requires dc.IsFd().
/// Returns only the groups (clean groups are filtered unless
/// `include_clean`). Runs on the table's columnar dictionary codes; the
/// grouping is identical to evaluating Cell::original() per row.
std::vector<FdGroup> DetectFdViolations(const Table& table,
                                        const DenialConstraint& dc,
                                        const std::vector<RowId>& rows,
                                        bool include_clean = false);

/// Row-at-a-time reference implementation (per-cell Value hashing). Kept
/// for ablation benchmarks and equivalence tests.
std::vector<FdGroup> DetectFdViolationsRowPath(const Table& table,
                                               const DenialConstraint& dc,
                                               const std::vector<RowId>& rows,
                                               bool include_clean = false);

/// Count of rows that participate in some violating group of `dc` over the
/// whole table — the paper's #vio statistic.
size_t CountFdViolatingRows(const Table& table, const DenialConstraint& dc);

/// Canonical ordering of detection output, shared by the from-scratch
/// detectors above and the delta-maintained FdDeltaDetector so their group
/// lists compare bit-identically: groups by lhs key (Value::Compare), each
/// histogram by (count desc, value).
void SortFdGroups(std::vector<FdGroup>* groups);
void SortFdRhsHistogram(std::vector<std::pair<Value, size_t>>* hist);

}  // namespace daisy

#endif  // DAISY_DETECT_FD_DETECTOR_H_
