#include "detect/fd_delta.h"

#include <algorithm>

namespace daisy {

FdDeltaDetector::FdDeltaDetector(const Table* table,
                                 const DenialConstraint* dc)
    : table_(table), dc_(dc) {
  Rebuild();
}

void FdDeltaDetector::Rebuild() {
  groups_.clear();
  dirty_rhs_refs_.clear();
  violating_rows_ = 0;
  violating_groups_ = 0;
  candidate_sum_ = 0;
  const FdView& fd = dc_->fd();
  const size_t n = table_->num_rows();
  groups_.reserve(n);
  for (RowId r = 0; r < n; ++r) {
    if (!table_->is_live(r)) continue;
    GroupState& g = groups_[MakeGroupKey(*table_, r, fd.lhs)];
    g.rows.push_back(r);  // ascending: rows visited in id order
    ++g.hist[table_->cell(r, fd.rhs).original()];
  }
  for (const auto& [key, g] : groups_) {
    if (!g.violating()) continue;
    ++violating_groups_;
    violating_rows_ += g.rows.size();
    candidate_sum_ += g.hist.size();
    for (const auto& [value, count] : g.hist) ++dirty_rhs_refs_[value];
  }
}

void FdDeltaDetector::RemoveContribution(const GroupKey& key,
                                         FdRuleStats* stats) {
  auto it = groups_.find(key);
  if (it == groups_.end() || !it->second.violating()) return;
  const GroupState& g = it->second;
  --violating_groups_;
  violating_rows_ -= g.rows.size();
  candidate_sum_ -= g.hist.size();
  if (stats != nullptr) stats->dirty_lhs_keys.erase(key);
  for (const auto& [value, count] : g.hist) {
    auto ref = dirty_rhs_refs_.find(value);
    if (ref != dirty_rhs_refs_.end() && --ref->second == 0) {
      dirty_rhs_refs_.erase(ref);
      if (stats != nullptr) stats->dirty_rhs_vals.erase(value);
    }
  }
}

void FdDeltaDetector::AddContribution(const GroupKey& key,
                                      const GroupState& group,
                                      FdRuleStats* stats) {
  if (!group.violating()) return;
  ++violating_groups_;
  violating_rows_ += group.rows.size();
  candidate_sum_ += group.hist.size();
  if (stats != nullptr) stats->dirty_lhs_keys.insert(key);
  for (const auto& [value, count] : group.hist) {
    if (++dirty_rhs_refs_[value] == 1 && stats != nullptr) {
      stats->dirty_rhs_vals.insert(value);
    }
  }
}

void FdDeltaDetector::MirrorCounters(FdRuleStats* stats) const {
  stats->table_rows = table_->num_live_rows();
  stats->num_violating_rows = violating_rows_;
  stats->num_violating_groups = violating_groups_;
  stats->avg_candidates =
      violating_groups_ == 0
          ? 1.0
          : static_cast<double>(candidate_sum_) /
                static_cast<double>(violating_groups_);
}

std::vector<RowId> FdDeltaDetector::ApplyDelta(const TableDelta& delta,
                                               FdRuleStats* stats) {
  const FdView& fd = dc_->fd();
  // Groups whose membership this batch touches: their contribution to the
  // counters/dirty sets is retracted up front and re-added once the batch
  // is folded in, so every transition (clean<->violating, histogram growth)
  // patches the statistics exactly. The map remembers whether the group
  // was violating *before* the batch — rows of a group that stops
  // violating carry repairs computed against evidence that no longer
  // exists, so they count as stale too.
  std::vector<GroupKey> touched_order;
  std::unordered_map<GroupKey, bool, GroupKeyHash, GroupKeyEq> touched;
  auto touch = [&](const GroupKey& key) {
    auto existing = groups_.find(key);
    const bool was_violating =
        existing != groups_.end() && existing->second.violating();
    if (touched.emplace(key, was_violating).second) {
      touched_order.push_back(key);
      RemoveContribution(key, stats);
    }
  };

  for (RowId r : delta.appended) {
    if (!table_->is_live(r)) continue;
    GroupKey key = MakeGroupKey(*table_, r, fd.lhs);
    touch(key);
    GroupState& g = groups_[key];
    g.rows.push_back(r);  // appended ids exceed all existing: stays sorted
    ++g.hist[table_->cell(r, fd.rhs).original()];
  }
  for (RowId r : delta.deleted) {
    GroupKey key = MakeGroupKey(*table_, r, fd.lhs);
    auto it = groups_.find(key);
    if (it == groups_.end()) continue;
    GroupState& g = it->second;
    const auto pos = std::find(g.rows.begin(), g.rows.end(), r);
    if (pos == g.rows.end()) continue;  // row never tracked (stale delta)
    touch(key);  // reads counters only; g and pos stay valid
    g.rows.erase(pos);
    auto h = g.hist.find(table_->cell(r, fd.rhs).original());
    if (h != g.hist.end() && --h->second == 0) g.hist.erase(h);
  }

  std::vector<RowId> stale;
  for (const GroupKey& key : touched_order) {
    auto it = groups_.find(key);
    if (it == groups_.end()) continue;
    if (it->second.rows.empty()) {
      groups_.erase(it);
      continue;
    }
    AddContribution(key, it->second, stats);
    // Stale: the group violates now (members need fresh fixes against the
    // changed histogram) or violated before (a delete resolved it — the
    // survivors' probabilistic repairs must be retracted, matching what
    // cleaning the post-delete data from scratch would produce).
    if (it->second.violating() || touched[key]) {
      stale.insert(stale.end(), it->second.rows.begin(),
                   it->second.rows.end());
    }
  }
  if (stats != nullptr) MirrorCounters(stats);
  std::sort(stale.begin(), stale.end());
  stale.erase(std::unique(stale.begin(), stale.end()), stale.end());
  return stale;
}

std::vector<FdGroup> FdDeltaDetector::ViolatingGroups(
    bool include_clean) const {
  std::vector<FdGroup> out;
  out.reserve(include_clean ? groups_.size() : violating_groups_);
  for (const auto& [key, g] : groups_) {
    if (!include_clean && !g.violating()) continue;
    FdGroup group;
    group.lhs_key = key;
    group.rows = g.rows;
    group.rhs_histogram.assign(g.hist.begin(), g.hist.end());
    SortFdRhsHistogram(&group.rhs_histogram);
    out.push_back(std::move(group));
  }
  SortFdGroups(&out);
  return out;
}

void FdDeltaDetector::ExportStats(FdRuleStats* stats) const {
  stats->rule = dc_->name();
  stats->dirty_lhs_keys.clear();
  stats->dirty_rhs_vals.clear();
  for (const auto& [key, g] : groups_) {
    if (!g.violating()) continue;
    stats->dirty_lhs_keys.insert(key);
    for (const auto& [value, count] : g.hist) {
      stats->dirty_rhs_vals.insert(value);
    }
  }
  MirrorCounters(stats);
}

}  // namespace daisy
