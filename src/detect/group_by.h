// Hash-based grouping of table rows on column subsets — the BigDansing-style
// O(n) detection primitive for FDs, and the statistics precomputation
// primitive of the cost model.
//
// Grouping runs on the table's columnar dictionary codes: each row
// contributes one uint32_t per grouping column instead of hashing a Value
// tuple per row. Group keys in the returned map are the dictionary's
// representative values — Equals/Hash-consistent with the cell values, so
// lookups via MakeGroupKey behave identically to the row path.

#ifndef DAISY_DETECT_GROUP_BY_H_
#define DAISY_DETECT_GROUP_BY_H_

#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "storage/column_cache.h"
#include "storage/table.h"

namespace daisy {

/// A grouping key: the tuple of values of the grouping columns.
using GroupKey = std::vector<Value>;

struct GroupKeyHash {
  size_t operator()(const GroupKey& key) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : key) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct GroupKeyEq {
  bool operator()(const GroupKey& a, const GroupKey& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
};

using GroupMap =
    std::unordered_map<GroupKey, std::vector<RowId>, GroupKeyHash, GroupKeyEq>;

/// Extracts the grouping key (original values) of row `r` on `columns`.
GroupKey MakeGroupKey(const Table& table, RowId r,
                      const std::vector<size_t>& columns);

/// Groups `rows` of `table` by the original values of `columns`, using the
/// table's columnar dictionary codes.
GroupMap GroupRowsBy(const Table& table, const std::vector<size_t>& columns,
                     const std::vector<RowId>& rows);

/// Groups all rows of `table` by `columns`.
GroupMap GroupAllRowsBy(const Table& table, const std::vector<size_t>& columns);

/// Row-at-a-time reference implementation (hashes a Value tuple per row).
/// Kept for ablation benchmarks and equivalence tests; produces the same
/// grouping as GroupRowsBy.
GroupMap GroupRowsByRowPath(const Table& table,
                            const std::vector<size_t>& columns,
                            const std::vector<RowId>& rows);

}  // namespace daisy

#endif  // DAISY_DETECT_GROUP_BY_H_
