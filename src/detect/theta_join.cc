#include "detect/theta_join.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace daisy {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Conservative feasibility of `[lmin,lmax] op [rmin,rmax]`: can *some* pair
// of values drawn from the two ranges satisfy the comparison?
bool RangeFeasible(double lmin, double lmax, CompareOp op, double rmin,
                   double rmax) {
  switch (op) {
    case CompareOp::kLt:
      return lmin < rmax;
    case CompareOp::kLeq:
      return lmin <= rmax;
    case CompareOp::kGt:
      return lmax > rmin;
    case CompareOp::kGeq:
      return lmax >= rmin;
    case CompareOp::kEq:
      return lmin <= rmax && rmin <= lmax;
    case CompareOp::kNeq:
      return !(lmin == lmax && rmin == rmax && lmin == rmin);
  }
  return true;
}

}  // namespace

ThetaJoinDetector::ThetaJoinDetector(const Table* table,
                                     const DenialConstraint* dc,
                                     size_t partitions)
    : table_(table), dc_(dc), requested_partitions_(std::max<size_t>(1, partitions)) {
  // Primary partition attribute: the first cross-tuple order-comparison atom;
  // falls back to the first atom's left column.
  sort_column_ = dc_->atoms().empty() ? 0 : dc_->atoms()[0].left_column;
  for (const PredicateAtom& a : dc_->atoms()) {
    if (!a.right_is_constant && a.left_tuple != a.right_tuple &&
        (a.op == CompareOp::kLt || a.op == CompareOp::kLeq ||
         a.op == CompareOp::kGt || a.op == CompareOp::kGeq)) {
      sort_column_ = a.left_column;
      break;
    }
  }
  BuildPartitions();
  checked_.assign(table_->num_rows(), false);
}

double ThetaJoinDetector::ColumnValue(RowId r, size_t col) const {
  const Value& v = table_->cell(r, col).original();
  if (v.is_numeric()) return v.AsDouble();
  // Non-numeric attributes participate only in ==/!= atoms; map them onto a
  // stable 1-D coordinate so range feasibility remains conservative-correct
  // for equality (equal strings collide) and trivially true for !=.
  return static_cast<double>(v.Hash() % (1u << 30));
}

void ThetaJoinDetector::BuildPartitions() {
  sorted_ = table_->AllRowIds();
  std::sort(sorted_.begin(), sorted_.end(), [&](RowId a, RowId b) {
    const double va = ColumnValue(a, sort_column_);
    const double vb = ColumnValue(b, sort_column_);
    if (va != vb) return va < vb;
    return a < b;
  });
  position_.assign(table_->num_rows(), 0);
  for (size_t i = 0; i < sorted_.size(); ++i) position_[sorted_[i]] = i;

  const size_t n = sorted_.size();
  const size_t p = std::min(requested_partitions_, std::max<size_t>(1, n));
  boundaries_.clear();
  boundaries_.reserve(p);
  const std::vector<size_t>& cols = dc_->involved_columns();
  for (size_t i = 0; i < p; ++i) {
    PartitionStats part;
    part.begin = i * n / p;
    part.end = (i + 1) * n / p;
    part.min_val.assign(cols.size(), kInf);
    part.max_val.assign(cols.size(), -kInf);
    for (size_t s = part.begin; s < part.end; ++s) {
      const RowId r = sorted_[s];
      for (size_t c = 0; c < cols.size(); ++c) {
        const double v = ColumnValue(r, cols[c]);
        part.min_val[c] = std::min(part.min_val[c], v);
        part.max_val[c] = std::max(part.max_val[c], v);
      }
    }
    boundaries_.push_back(std::move(part));
  }
}

bool ThetaJoinDetector::OrientationFeasible(
    const PartitionStats& t1_part, const PartitionStats& t2_part) const {
  const std::vector<size_t>& cols = dc_->involved_columns();
  auto slot = [&](size_t col) {
    return static_cast<size_t>(
        std::lower_bound(cols.begin(), cols.end(), col) - cols.begin());
  };
  for (const PredicateAtom& a : dc_->atoms()) {
    const PartitionStats& lp = a.left_tuple == 0 ? t1_part : t2_part;
    const size_t ls = slot(a.left_column);
    double rmin, rmax;
    if (a.right_is_constant) {
      const double c = a.constant.is_numeric()
                           ? a.constant.AsDouble()
                           : static_cast<double>(a.constant.Hash() % (1u << 30));
      rmin = rmax = c;
    } else {
      const PartitionStats& rp = a.right_tuple == 0 ? t1_part : t2_part;
      const size_t rs = slot(a.right_column);
      rmin = rp.min_val[rs];
      rmax = rp.max_val[rs];
    }
    if (!RangeFeasible(lp.min_val[ls], lp.max_val[ls], a.op, rmin, rmax)) {
      return false;
    }
  }
  return true;
}

bool ThetaJoinDetector::PairFeasible(const PartitionStats& a,
                                     const PartitionStats& b) const {
  return OrientationFeasible(a, b) || OrientationFeasible(b, a);
}

void ThetaJoinDetector::CheckPair(RowId a, RowId b,
                                  std::vector<ViolationPair>* out) {
  ++pairs_checked_;
  if (dc_->ViolatedBy(*table_, a, b)) out->push_back({a, b});
  if (a != b && dc_->ViolatedBy(*table_, b, a)) out->push_back({b, a});
}

std::vector<ViolationPair> ThetaJoinDetector::DetectAll() {
  pairs_checked_ = 0;
  partitions_pruned_ = 0;
  std::vector<ViolationPair> out;
  const size_t p = boundaries_.size();
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = i; j < p; ++j) {
      if (pruning_enabled_ && !PairFeasible(boundaries_[i], boundaries_[j])) {
        ++partitions_pruned_;
        continue;
      }
      const PartitionStats& bi = boundaries_[i];
      const PartitionStats& bj = boundaries_[j];
      for (size_t si = bi.begin; si < bi.end; ++si) {
        const size_t sj_begin = (i == j) ? si + 1 : bj.begin;
        for (size_t sj = sj_begin; sj < bj.end; ++sj) {
          const RowId a = sorted_[si];
          const RowId b = sorted_[sj];
          // checked_[x] means x was already cross-checked against every
          // row, so any pair with a checked endpoint is covered.
          if (checked_[a] || checked_[b]) continue;
          CheckPair(a, b, &out);
        }
      }
    }
  }
  std::fill(checked_.begin(), checked_.end(), true);
  return out;
}

std::vector<ViolationPair> ThetaJoinDetector::DetectIncremental(
    const std::vector<RowId>& result_rows) {
  pairs_checked_ = 0;
  partitions_pruned_ = 0;
  std::vector<ViolationPair> out;
  if (result_rows.empty()) return out;

  // Boundary statistics of the query answer, playing the role of one side of
  // the partial matrix.
  const std::vector<size_t>& cols = dc_->involved_columns();
  PartitionStats answer;
  answer.min_val.assign(cols.size(), kInf);
  answer.max_val.assign(cols.size(), -kInf);
  for (RowId r : result_rows) {
    for (size_t c = 0; c < cols.size(); ++c) {
      const double v = ColumnValue(r, cols[c]);
      answer.min_val[c] = std::min(answer.min_val[c], v);
      answer.max_val[c] = std::max(answer.max_val[c], v);
    }
  }

  for (const PartitionStats& part : boundaries_) {
    if (pruning_enabled_ && !PairFeasible(answer, part)) {
      ++partitions_pruned_;
      continue;
    }
    for (size_t s = part.begin; s < part.end; ++s) {
      const RowId u = sorted_[s];
      for (RowId r : result_rows) {
        if (r == u) continue;
        if (checked_[r] || checked_[u]) continue;
        // Canonicalize so each unordered pair is checked once per call:
        // when both endpoints are in the result set, the smaller id leads.
        if (u < r && checked_[u] == false &&
            std::binary_search(result_rows.begin(), result_rows.end(), u)) {
          continue;
        }
        CheckPair(r, u, &out);
      }
    }
  }
  for (RowId r : result_rows) checked_[r] = true;
  return out;
}

const std::vector<double>& ThetaJoinDetector::EstimateErrors() {
  if (range_vio_valid_) return range_vio_;
  const size_t p = boundaries_.size();
  range_vio_.assign(p, 0.0);
  const std::vector<size_t>& cols = dc_->involved_columns();
  auto slot = [&](size_t col) {
    return static_cast<size_t>(
        std::lower_bound(cols.begin(), cols.end(), col) - cols.begin());
  };
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = 0; j < p; ++j) {
      if (i == j) continue;  // diagonal handled through Support()
      // Oriented estimate: partition i binds t1, partition j binds t2 (the
      // loop visits both orders).
      if (!OrientationFeasible(boundaries_[i], boundaries_[j])) continue;
      const double rows_i = static_cast<double>(boundaries_[i].end -
                                                boundaries_[i].begin);
      const double rows_j = static_cast<double>(boundaries_[j].end -
                                                boundaries_[j].begin);
      // Conflicts lie in the overlap of the boundary ranges of each order
      // atom (the paper's range_vio); atoms whose ranges are disjoint in
      // the satisfying direction restrict nothing, so only overlapping
      // atoms bound the estimate.
      double estimate = std::min(rows_i, rows_j);
      for (const PredicateAtom& a : dc_->atoms()) {
        if (a.right_is_constant || a.left_tuple == a.right_tuple) continue;
        if (a.op == CompareOp::kEq || a.op == CompareOp::kNeq) continue;
        const PartitionStats& lp =
            a.left_tuple == 0 ? boundaries_[i] : boundaries_[j];
        const PartitionStats& rp =
            a.right_tuple == 0 ? boundaries_[i] : boundaries_[j];
        const size_t ls = slot(a.left_column);
        const size_t rs = slot(a.right_column);
        const double lo = std::max(lp.min_val[ls], rp.min_val[rs]);
        const double hi = std::min(lp.max_val[ls], rp.max_val[rs]);
        if (lo > hi) continue;  // non-restrictive: feasibility already held
        const double ci = static_cast<double>(
            CountRowsInRange(lp, a.left_column, lo, hi));
        const double cj = static_cast<double>(
            CountRowsInRange(rp, a.right_column, lo, hi));
        estimate = std::min(estimate, std::min(ci, cj));
      }
      range_vio_[i] += estimate;
    }
  }
  range_vio_valid_ = true;
  return range_vio_;
}

size_t ThetaJoinDetector::CountRowsInRange(const PartitionStats& part,
                                           size_t col, double lo,
                                           double hi) const {
  size_t count = 0;
  for (size_t s = part.begin; s < part.end; ++s) {
    const double v = ColumnValue(sorted_[s], col);
    if (v >= lo && v <= hi) ++count;
  }
  return count;
}

double ThetaJoinDetector::EstimateAccuracy(
    const std::vector<RowId>& result_rows) {
  if (result_rows.empty()) return 1.0;
  EstimateErrors();
  double lo = kInf, hi = -kInf;
  for (RowId r : result_rows) {
    const double v = ColumnValue(r, sort_column_);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double errors = 0.0;
  for (size_t i = 0; i < boundaries_.size(); ++i) {
    const PartitionStats& part = boundaries_[i];
    if (part.begin == part.end) continue;
    const double pmin = ColumnValue(sorted_[part.begin], sort_column_);
    const double pmax = ColumnValue(sorted_[part.end - 1], sort_column_);
    if (pmax < lo || pmin > hi) continue;
    // Charge the answer only with the slice of the partition's estimated
    // conflicts that its range actually covers.
    double fraction = 1.0;
    if (pmax > pmin) {
      const double cover = std::min(hi, pmax) - std::max(lo, pmin);
      fraction = std::max(0.0, std::min(1.0, cover / (pmax - pmin)));
    }
    errors += range_vio_[i] * fraction;
  }
  // Note: Algorithm 2 line 6 computes errors/(|qa|+errors) and the paper
  // narrates the result as "accuracy". We return the complementary clean
  // fraction so that *higher is cleaner*; callers trigger full cleaning when
  // this drops below the threshold (matching the Fig. 10 narrative).
  const double dirtiness =
      errors / (static_cast<double>(result_rows.size()) + errors);
  return 1.0 - dirtiness;
}

double ThetaJoinDetector::Support() const {
  const size_t p = boundaries_.size();
  if (p == 0) return 1.0;
  // A partition is covered once all its rows were cross-checked.
  std::vector<bool> covered(p, true);
  for (size_t i = 0; i < p; ++i) {
    for (size_t s = boundaries_[i].begin; s < boundaries_[i].end; ++s) {
      if (!checked_[sorted_[s]]) {
        covered[i] = false;
        break;
      }
    }
  }
  size_t done = 0, total = 0;
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = i; j < p; ++j) {
      ++total;
      if (covered[i] && covered[j]) ++done;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(done) / static_cast<double>(total);
}

bool ThetaJoinDetector::FullyChecked() const {
  for (bool b : checked_) {
    if (!b) return false;
  }
  return true;
}

}  // namespace daisy
