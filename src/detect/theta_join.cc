#include "detect/theta_join.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <thread>

namespace daisy {

namespace detail {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool RangeFeasible(double lmin, double lmax, CompareOp op, double rmin,
                   double rmax) {
  switch (op) {
    case CompareOp::kLt:
      return lmin < rmax;
    case CompareOp::kLeq:
      return lmin <= rmax;
    case CompareOp::kGt:
      return lmax > rmin;
    case CompareOp::kGeq:
      return lmax >= rmin;
    case CompareOp::kEq:
      return lmin <= rmax && rmin <= lmax;
    case CompareOp::kNeq:
      // Infeasible only when both ranges are the same single point: every
      // draw is then equal. Any wider range on either side offers a
      // distinct value.
      return lmin != lmax || rmin != rmax || lmin != rmin;
  }
  return true;
}

}  // namespace detail

namespace {

using detail::kInf;
using detail::RangeFeasible;

// NullCompare / CompareDoubles / CompareRanks — the flat-array forms of
// EvalCompare the compiled atoms evaluate with — live in
// constraints/predicate.h, shared with the plan layer's compiled filters.

}  // namespace

ThetaJoinDetector::ThetaJoinDetector(const Table* table,
                                     const DenialConstraint* dc,
                                     size_t partitions, size_t threads)
    : table_(table),
      dc_(dc),
      requested_partitions_(std::max<size_t>(1, partitions)),
      threads_(std::max<size_t>(1, threads)) {
  // Primary partition attribute: the first cross-tuple order-comparison atom;
  // falls back to the first atom's left column.
  sort_column_ = dc_->atoms().empty() ? 0 : dc_->atoms()[0].left_column;
  for (const PredicateAtom& a : dc_->atoms()) {
    if (!a.right_is_constant && a.left_tuple != a.right_tuple &&
        (a.op == CompareOp::kLt || a.op == CompareOp::kLeq ||
         a.op == CompareOp::kGt || a.op == CompareOp::kGeq)) {
      sort_column_ = a.left_column;
      break;
    }
  }
  BuildPartitions();
  ResetCoverage();
}

void ThetaJoinDetector::ResetCoverage() {
  checked_.assign(table_->num_rows(), false);
  checked_count_ = 0;
  for (RowId r = 0; r < checked_.size(); ++r) {
    if (!table_->is_live(r)) MarkRowChecked(r);
  }
  deleted_log_pos_ = table_->deleted_rows_log().size();
  // Nothing is checked, so a plain DetectAll covers every pair — no
  // appended rows owe a separate integration pass.
  integrated_rows_ = table_->num_rows();
  maintained_.clear();
  retractions_ = 0;
}

void ThetaJoinDetector::EnsureFresh() {
  ColumnCache& cache = table_->columns();
  const std::vector<size_t>& cols = dc_->involved_columns();
  // Content change: the values an involved column exposes differ from the
  // ones the current partitions/coverage were computed on. A new cache
  // identity (the table was reassigned wholesale) counts — generations of
  // different cache instances are not comparable.
  bool content_changed =
      cols_.size() != cols.size() || cache.id() != cache_id_;
  // Storage move: a rebuild reallocated the arrays the compiled atoms
  // point into, even if it reproduced identical content (the usual
  // candidate-only repair path). Pointers must be refreshed either way.
  bool storage_moved = content_changed;
  if (!content_changed) {
    for (size_t i = 0; i < cols.size(); ++i) {
      const ColumnCache::Column& col = cache.column(cols[i]);
      if (col.generation != col_generations_[i]) content_changed = true;
      if (col.num.data() != col_data_[i]) storage_moved = true;
    }
  }
  if (content_changed) {
    // Rows checked against the old values are not checked against the
    // new; estimates and the maintained set are stale too.
    BuildPartitions();
    range_vio_valid_ = false;
    ResetCoverage();
    return;
  }
  // Ingest deltas keep the coverage: appended rows join as unchecked,
  // deleted rows become trivially checked and their pairs are pruned.
  const bool appended = checked_.size() < table_->num_rows();
  if (appended) checked_.resize(table_->num_rows(), false);
  const std::vector<RowId>& dlog = table_->deleted_rows_log();
  const bool deleted = deleted_log_pos_ < dlog.size();
  if (deleted) {
    for (size_t i = deleted_log_pos_; i < dlog.size(); ++i) {
      if (dlog[i] < checked_.size()) MarkRowChecked(dlog[i]);
    }
    deleted_log_pos_ = dlog.size();
    auto dead = [&](const ViolationPair& p) {
      return !table_->is_live(p.t1) || !table_->is_live(p.t2);
    };
    const size_t before = maintained_.size();
    maintained_.erase(
        std::remove_if(maintained_.begin(), maintained_.end(), dead),
        maintained_.end());
    retractions_ += before - maintained_.size();
  }
  if (appended || deleted) {
    BuildPartitions();
    range_vio_valid_ = false;
  } else if (storage_moved) {
    BuildPartitions();
  }
}

void ThetaJoinDetector::MergeIntoMaintained(
    const std::vector<ViolationPair>& found) {
  if (found.empty()) return;
  // maintained_ is kept sorted, so only the new pairs need sorting before
  // an in-place merge. The unique pass is load-bearing: DetectAll /
  // DetectIncremental merge their auto-drained pairs a second time when
  // the combined result vector is folded in at the end of the call.
  std::vector<ViolationPair> sorted_found = found;
  std::sort(sorted_found.begin(), sorted_found.end());
  const size_t old_size = maintained_.size();
  maintained_.insert(maintained_.end(), sorted_found.begin(),
                     sorted_found.end());
  std::inplace_merge(maintained_.begin(), maintained_.begin() + old_size,
                     maintained_.end());
  maintained_.erase(std::unique(maintained_.begin(), maintained_.end()),
                    maintained_.end());
}

const std::vector<ViolationPair>& ThetaJoinDetector::maintained_violations() {
  EnsureFresh();
  return maintained_;
}

size_t ThetaJoinDetector::ConsumeRetractions() {
  EnsureFresh();
  const size_t count = retractions_;
  retractions_ = 0;
  return count;
}

ThetaPersistState ThetaJoinDetector::ExportState() {
  EnsureFresh();
  ThetaPersistState state;
  state.checked.reserve(checked_.size());
  for (bool b : checked_) state.checked.push_back(b ? 1 : 0);
  state.integrated_rows = integrated_rows_;
  state.deleted_log_pos = deleted_log_pos_;
  state.retractions = retractions_;
  state.maintained = maintained_;
  return state;
}

Status ThetaJoinDetector::ImportState(const ThetaPersistState& state) {
  // Partitions / compiled atoms first: after this the detector is fresh
  // against the restored table, with a blank coverage we overwrite below.
  EnsureFresh();
  if (state.checked.size() != table_->num_rows()) {
    return Status::InvalidArgument(
        "theta state for " + dc_->name() + " covers " +
        std::to_string(state.checked.size()) + " rows, table " +
        table_->name() + " has " + std::to_string(table_->num_rows()));
  }
  if (state.integrated_rows > table_->num_rows() ||
      state.deleted_log_pos != table_->deleted_rows_log().size()) {
    return Status::InvalidArgument("theta state for " + dc_->name() +
                                   " does not match the table's ingest log");
  }
  for (const ViolationPair& p : state.maintained) {
    if (p.t1 >= table_->num_rows() || p.t2 >= table_->num_rows()) {
      return Status::InvalidArgument("theta state for " + dc_->name() +
                                     " names an out-of-range violation row");
    }
  }
  checked_.assign(state.checked.size(), false);
  checked_count_ = 0;
  for (RowId r = 0; r < state.checked.size(); ++r) {
    if (state.checked[r] != 0) MarkRowChecked(r);
  }
  integrated_rows_ = state.integrated_rows;
  deleted_log_pos_ = state.deleted_log_pos;
  retractions_ = state.retractions;
  maintained_ = state.maintained;
  range_vio_valid_ = false;
  return Status::OK();
}

void ThetaJoinDetector::BuildPartitions() {
  ColumnCache& cache = table_->columns();
  const std::vector<size_t>& cols = dc_->involved_columns();
  cache_id_ = cache.id();
  cols_.clear();
  col_generations_.clear();
  col_data_.clear();
  for (size_t c : cols) {
    const ColumnCache::Column& col = cache.column(c);
    cols_.push_back(&col);
    col_generations_.push_back(col.generation);
    col_data_.push_back(col.num.data());
  }
  sort_slot_ = static_cast<size_t>(
      std::lower_bound(cols.begin(), cols.end(), sort_column_) - cols.begin());

  // The cache's sorted index uses exactly this detector's historical order:
  // numeric projection ascending, row id as tiebreak. Tombstoned rows are
  // filtered out here so no scan ever visits them.
  const std::vector<RowId>& all_sorted = cache.column(sort_column_).sorted_rows;
  sorted_.clear();
  sorted_.reserve(table_->num_live_rows());
  for (RowId r : all_sorted) {
    if (table_->is_live(r)) sorted_.push_back(r);
  }

  const size_t n = sorted_.size();
  const size_t p = std::min(requested_partitions_, std::max<size_t>(1, n));
  boundaries_.clear();
  boundaries_.reserve(p);
  for (size_t i = 0; i < p; ++i) {
    PartitionStats part;
    part.begin = i * n / p;
    part.end = (i + 1) * n / p;
    part.min_val.assign(cols.size(), kInf);
    part.max_val.assign(cols.size(), -kInf);
    for (size_t s = part.begin; s < part.end; ++s) {
      const RowId r = sorted_[s];
      for (size_t c = 0; c < cols.size(); ++c) {
        const double v = cols_[c]->num[r];
        part.min_val[c] = std::min(part.min_val[c], v);
        part.max_val[c] = std::max(part.max_val[c], v);
      }
    }
    boundaries_.push_back(std::move(part));
  }
  range_index_built_ = false;
  CompileAtoms(cache);
}

void ThetaJoinDetector::CompileAtoms(ColumnCache& cache) {
  compiled_.clear();
  const std::vector<PredicateAtom>& atoms = dc_->atoms();
  compiled_.reserve(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) {
    const PredicateAtom& a = atoms[i];
    CompiledAtom ca;
    ca.op = a.op;
    ca.left_tuple = a.left_tuple;
    ca.right_tuple = a.right_is_constant ? a.left_tuple : a.right_tuple;
    ca.atom_index = i;
    const ColumnCache::Column& left = cache.column(a.left_column);
    ca.lnum = left.num.data();
    ca.lnulls = left.nulls.data();
    ca.lranks = left.ranks.data();
    if (a.right_is_constant) {
      ca.check_nulls = left.has_nulls;
      if (a.constant.is_null()) {
        ca.kind = CompiledAtom::Kind::kNullConst;
      } else if (left.numeric_only && a.constant.is_numeric()) {
        ca.kind = CompiledAtom::Kind::kNumConst;
        ca.cnum = a.constant.AsDouble();
      } else {
        // Locate the constant in the column's rank domain: clo = #distinct
        // column values ordering strictly below it (Value::Compare, the
        // same order ranks were assigned under).
        ca.kind = CompiledAtom::Kind::kRankConst;
        const std::vector<Value>& sd = left.sorted_distinct;
        auto it = std::lower_bound(
            sd.begin(), sd.end(), a.constant,
            [](const Value& v, const Value& c) { return v.Compare(c) < 0; });
        ca.clo = static_cast<uint32_t>(it - sd.begin());
        ca.chas_eq = it != sd.end() && it->Compare(a.constant) == 0;
      }
    } else {
      const ColumnCache::Column& right = cache.column(a.right_column);
      ca.rnum = right.num.data();
      ca.rnulls = right.nulls.data();
      ca.rranks = right.ranks.data();
      ca.check_nulls = left.has_nulls || right.has_nulls;
      if (a.left_column == a.right_column) {
        ca.kind = CompiledAtom::Kind::kRank;
      } else if (left.numeric_only && right.numeric_only) {
        ca.kind = CompiledAtom::Kind::kNum;
      } else {
        // Two different columns, at least one non-numeric: per-column ranks
        // are not comparable across columns — keep Value semantics.
        ca.kind = CompiledAtom::Kind::kRow;
      }
    }
    compiled_.push_back(ca);
  }
}

bool ThetaJoinDetector::EvalAtomFlat(const CompiledAtom& atom, RowId a,
                                     RowId b) const {
  const RowId rows[2] = {a, b};  // branch-free tuple binding
  const RowId l = rows[atom.left_tuple];
  const RowId r = rows[atom.right_tuple];
  switch (atom.kind) {
    case CompiledAtom::Kind::kNum: {
      if (atom.check_nulls) {
        const bool lnull = atom.lnulls[l] != 0;
        const bool rnull = atom.rnulls[r] != 0;
        if (lnull || rnull) return NullCompare(lnull, rnull, atom.op);
      }
      return CompareDoubles(atom.lnum[l], atom.op, atom.rnum[r]);
    }
    case CompiledAtom::Kind::kRank: {
      if (atom.check_nulls) {
        const bool lnull = atom.lnulls[l] != 0;
        const bool rnull = atom.rnulls[r] != 0;
        if (lnull || rnull) return NullCompare(lnull, rnull, atom.op);
      }
      return CompareRanks(atom.lranks[l], atom.op, atom.rranks[r]);
    }
    case CompiledAtom::Kind::kNumConst: {
      if (atom.check_nulls && atom.lnulls[l] != 0) {
        return NullCompare(true, false, atom.op);
      }
      return CompareDoubles(atom.lnum[l], atom.op, atom.cnum);
    }
    case CompiledAtom::Kind::kRankConst: {
      if (atom.check_nulls && atom.lnulls[l] != 0) {
        return NullCompare(true, false, atom.op);
      }
      const uint32_t x = atom.lranks[l];
      switch (atom.op) {
        case CompareOp::kEq:
          return atom.chas_eq && x == atom.clo;
        case CompareOp::kNeq:
          return !(atom.chas_eq && x == atom.clo);
        case CompareOp::kLt:
          return x < atom.clo;
        case CompareOp::kLeq:
          return x < atom.clo + (atom.chas_eq ? 1u : 0u);
        case CompareOp::kGt:
          return x >= atom.clo + (atom.chas_eq ? 1u : 0u);
        case CompareOp::kGeq:
          return x >= atom.clo;
      }
      return false;
    }
    case CompiledAtom::Kind::kNullConst:
      return NullCompare(atom.lnulls[l] != 0, true, atom.op);
    case CompiledAtom::Kind::kRow: {
      const PredicateAtom& pa = dc_->atoms()[atom.atom_index];
      const Value& lhs = table_->cell(l, pa.left_column).original();
      const Value& rhs = pa.right_is_constant
                             ? pa.constant
                             : table_->cell(r, pa.right_column).original();
      return EvalCompare(lhs, pa.op, rhs);
    }
  }
  return false;
}

// Fused unordered-pair evaluation: both tuple orientations in a single
// pass over the compiled atoms, sharing the per-row operand loads. Callers
// guarantee a != b (the scan loops never produce the diagonal), so the
// pairwise a == b short-circuit of DenialConstraint::ViolatedBy is not
// re-checked here.
std::pair<bool, bool> ThetaJoinDetector::CheckBoth(RowId a, RowId b) const {
  if (!columnar_enabled_) {
    return {dc_->ViolatedBy(*table_, a, b), dc_->ViolatedBy(*table_, b, a)};
  }
  const CompiledAtom* const atoms = compiled_.data();
  const size_t n = compiled_.size();
  bool fwd = true;
  for (size_t i = 0; i < n; ++i) {
    if (!EvalAtomFlat(atoms[i], a, b)) {
      fwd = false;
      break;
    }
  }
  bool rev = true;
  for (size_t i = 0; i < n; ++i) {
    if (!EvalAtomFlat(atoms[i], b, a)) {
      rev = false;
      break;
    }
  }
  return {fwd, rev};
}

bool ThetaJoinDetector::OrientationFeasible(
    const PartitionStats& t1_part, const PartitionStats& t2_part) const {
  const std::vector<size_t>& cols = dc_->involved_columns();
  auto slot = [&](size_t col) {
    return static_cast<size_t>(
        std::lower_bound(cols.begin(), cols.end(), col) - cols.begin());
  };
  for (const PredicateAtom& a : dc_->atoms()) {
    const PartitionStats& lp = a.left_tuple == 0 ? t1_part : t2_part;
    const size_t ls = slot(a.left_column);
    double rmin, rmax;
    if (a.right_is_constant) {
      const double c = ColumnCache::NumericCoord(a.constant);
      rmin = rmax = c;
    } else {
      const PartitionStats& rp = a.right_tuple == 0 ? t1_part : t2_part;
      const size_t rs = slot(a.right_column);
      rmin = rp.min_val[rs];
      rmax = rp.max_val[rs];
    }
    if (!RangeFeasible(lp.min_val[ls], lp.max_val[ls], a.op, rmin, rmax)) {
      return false;
    }
  }
  return true;
}

bool ThetaJoinDetector::PairFeasible(const PartitionStats& a,
                                     const PartitionStats& b) const {
  return OrientationFeasible(a, b) || OrientationFeasible(b, a);
}

void ThetaJoinDetector::CheckPair(RowId a, RowId b,
                                  std::vector<ViolationPair>* out,
                                  size_t* pairs) const {
  ++*pairs;
  const auto [fwd, rev] = CheckBoth(a, b);
  if (fwd) out->push_back({a, b});
  if (rev) out->push_back({b, a});
}

void ThetaJoinDetector::ScanCell(size_t i, size_t j,
                                 std::vector<ViolationPair>* out,
                                 size_t* pairs) const {
  const PartitionStats& bi = boundaries_[i];
  const PartitionStats& bj = boundaries_[j];
  for (size_t si = bi.begin; si < bi.end; ++si) {
    const RowId a = sorted_[si];
    // checked_[x] means x was already cross-checked against every row, so
    // any pair with a checked endpoint is covered.
    if (checked_[a]) continue;
    const size_t sj_begin = (i == j) ? si + 1 : bj.begin;
    for (size_t sj = sj_begin; sj < bj.end; ++sj) {
      const RowId b = sorted_[sj];
      if (checked_[b]) continue;
      CheckPair(a, b, out, pairs);
    }
  }
}

std::vector<ViolationPair> ThetaJoinDetector::DetectAll() {
  EnsureFresh();
  pairs_checked_ = 0;
  partitions_pruned_ = 0;

  // Integrate stray appends first (rows added through the plain Table API
  // with no DetectDelta call): the cell scan below skips pairs with a
  // checked endpoint, so the new x checked-old pairs must be paid here or
  // they would be lost forever once everything is marked checked.
  std::vector<ViolationPair> drained = DrainAppends(checked_.size());

  // Surviving matrix cells of the upper triangle, in deterministic order.
  const size_t p = boundaries_.size();
  std::vector<std::pair<uint32_t, uint32_t>> cells;
  cells.reserve(p * (p + 1) / 2);
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = i; j < p; ++j) {
      if (pruning_enabled_ && !PairFeasible(boundaries_[i], boundaries_[j])) {
        ++partitions_pruned_;
        continue;
      }
      cells.emplace_back(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
    }
  }

  std::vector<ViolationPair> out = std::move(drained);
  const size_t workers = std::min(threads_, std::max<size_t>(1, cells.size()));
  if (workers <= 1) {
    for (const auto& [i, j] : cells) ScanCell(i, j, &out, &pairs_checked_);
  } else {
    // Each cell collects into its own buffer; buffers are concatenated in
    // cell order afterwards, so the output is identical to the serial scan.
    std::vector<std::vector<ViolationPair>> cell_out(cells.size());
    std::vector<size_t> cell_pairs(cells.size(), 0);
    std::atomic<size_t> next{0};
    auto work = [&]() {
      while (true) {
        const size_t k = next.fetch_add(1, std::memory_order_relaxed);
        if (k >= cells.size()) break;
        ScanCell(cells[k].first, cells[k].second, &cell_out[k],
                 &cell_pairs[k]);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t t = 0; t < workers; ++t) pool.emplace_back(work);
    for (std::thread& t : pool) t.join();
    for (size_t k = 0; k < cells.size(); ++k) {
      pairs_checked_ += cell_pairs[k];
      out.insert(out.end(), cell_out[k].begin(), cell_out[k].end());
    }
  }
  std::fill(checked_.begin(), checked_.end(), true);
  checked_count_ = checked_.size();
  MergeIntoMaintained(out);
  return out;
}

std::vector<ViolationPair> ThetaJoinDetector::DetectIncremental(
    const std::vector<RowId>& result_rows) {
  EnsureFresh();
  pairs_checked_ = 0;
  partitions_pruned_ = 0;
  // Stray appends integrate first (see DetectAll): after this, result rows
  // from the new range are checked and take the fast skip below.
  std::vector<ViolationPair> out = DrainAppends(checked_.size());
  if (result_rows.empty()) return out;

  // Boundary statistics of the query answer, playing the role of one side of
  // the partial matrix.
  const size_t num_slots = cols_.size();
  PartitionStats answer;
  answer.min_val.assign(num_slots, kInf);
  answer.max_val.assign(num_slots, -kInf);
  for (RowId r : result_rows) {
    for (size_t c = 0; c < num_slots; ++c) {
      const double v = cols_[c]->num[r];
      answer.min_val[c] = std::min(answer.min_val[c], v);
      answer.max_val[c] = std::max(answer.max_val[c], v);
    }
  }

  if (!columnar_enabled_) {
    // Ablation: the pre-columnar scan — per-pair checked tests, per-pair
    // unordered-pair dedup, per-cell Value dispatch via ViolatedBy.
    for (const PartitionStats& part : boundaries_) {
      if (pruning_enabled_ && !PairFeasible(answer, part)) {
        ++partitions_pruned_;
        continue;
      }
      for (size_t s = part.begin; s < part.end; ++s) {
        const RowId u = sorted_[s];
        for (RowId r : result_rows) {
          if (r == u) continue;
          if (checked_[r] || checked_[u]) continue;
          if (u < r && std::binary_search(result_rows.begin(),
                                          result_rows.end(), u)) {
            continue;
          }
          CheckPair(r, u, &out, &pairs_checked_);
        }
      }
    }
    for (RowId r : result_rows) MarkRowChecked(r);
    MergeIntoMaintained(out);
    return out;
  }

  // Hot-loop invariants: result rows already checked never produce new
  // pairs, so drop them once instead of testing checked_[r] per pair.
  std::vector<RowId> active;
  active.reserve(result_rows.size());
  for (RowId r : result_rows) {
    if (!checked_[r]) active.push_back(r);
  }

  for (const PartitionStats& part : boundaries_) {
    if (pruning_enabled_ && !PairFeasible(answer, part)) {
      ++partitions_pruned_;
      continue;
    }
    for (size_t s = part.begin; s < part.end; ++s) {
      const RowId u = sorted_[s];
      if (checked_[u]) continue;
      // When both endpoints are in the (sorted) result set the unordered
      // pair {u, r} comes up twice — once per endpoint playing `u`. Keep
      // only the visit where the larger id plays `u`, i.e. pair `u` only
      // with the result prefix below it (`active` is sorted ascending).
      auto last = active.end();
      if (std::binary_search(result_rows.begin(), result_rows.end(), u)) {
        last = std::lower_bound(active.begin(), active.end(), u);
      }
      pairs_checked_ += static_cast<size_t>(last - active.begin());
      for (auto it = active.begin(); it != last; ++it) {
        const RowId r = *it;
        const auto [fwd, rev] = CheckBoth(r, u);
        if (fwd) out.push_back({r, u});
        if (rev) out.push_back({u, r});
      }
    }
  }
  for (RowId r : result_rows) MarkRowChecked(r);
  MergeIntoMaintained(out);
  return out;
}

std::vector<ViolationPair> ThetaJoinDetector::DetectDelta(
    const TableDelta& delta) {
  EnsureFresh();
  pairs_checked_ = 0;
  partitions_pruned_ = 0;
  const RowId end = delta.appended.empty() ? integrated_rows_
                                           : delta.appended.back() + 1;
  std::vector<ViolationPair> out = DrainAppends(end);
  return out;
}

std::vector<ViolationPair> ThetaJoinDetector::DrainAppends(RowId end) {
  std::vector<ViolationPair> out;
  end = std::min<RowId>(end, checked_.size());
  if (integrated_rows_ >= end) return out;
  // Rows below `lo` existed before the pending arrivals; rows at or above
  // `end` arrived later and owe their own pass (this keeps multi-batch
  // drains exactly-once when called per delta, in order).
  const RowId lo = integrated_rows_;
  std::vector<RowId> fresh;
  fresh.reserve(end - lo);
  for (RowId r = lo; r < end; ++r) {
    if (table_->is_live(r) && !checked_[r]) fresh.push_back(r);
  }
  integrated_rows_ = end;
  if (fresh.empty()) return out;

  // The pending rows already sit in the rebuilt partitions, so the scan
  // reuses DetectAll's *pairwise* partition pruning (a whole-batch bounds
  // box would span the domain and prune nothing): only cells where one
  // side holds pending rows and the boundary ranges stay feasible are
  // visited, giving the O(delta x n/p) partial theta-join.
  const size_t p = boundaries_.size();
  std::vector<std::vector<RowId>> new_in(p);
  for (size_t i = 0; i < p; ++i) {
    for (size_t s = boundaries_[i].begin; s < boundaries_[i].end; ++s) {
      const RowId u = sorted_[s];
      if (u >= lo && std::binary_search(fresh.begin(), fresh.end(), u)) {
        new_in[i].push_back(u);
      }
    }
  }

  auto check = [&](RowId a, RowId b) {
    ++pairs_checked_;
    const auto [fwd, rev] = CheckBoth(a, b);
    if (fwd) out.push_back({a, b});
    if (rev) out.push_back({b, a});
  };

  for (size_t i = 0; i < p; ++i) {
    for (size_t j = i; j < p; ++j) {
      if (new_in[i].empty() && new_in[j].empty()) continue;
      if (pruning_enabled_ && !PairFeasible(boundaries_[i], boundaries_[j])) {
        ++partitions_pruned_;
        continue;
      }
      const PartitionStats& bi = boundaries_[i];
      const PartitionStats& bj = boundaries_[j];
      // new(i) x preexisting(j) — including preexisting rows that were
      // never checked: this is what restores the coverage invariant the
      // append broke. Rows >= lo that are not in this batch arrived with a
      // later batch; their own DetectDelta pairs them with these rows.
      for (RowId a : new_in[i]) {
        for (size_t s = bj.begin; s < bj.end; ++s) {
          const RowId b = sorted_[s];
          if (b < lo) check(a, b);
        }
      }
      if (j == i) {
        // new x new inside the partition: each unordered pair once.
        for (size_t x = 0; x < new_in[i].size(); ++x) {
          for (size_t y = x + 1; y < new_in[i].size(); ++y) {
            check(new_in[i][x], new_in[i][y]);
          }
        }
      } else {
        // new(j) x preexisting(i), and new x new across the two cells.
        for (RowId b : new_in[j]) {
          for (size_t s = bi.begin; s < bi.end; ++s) {
            const RowId a = sorted_[s];
            if (a < lo) check(b, a);
          }
        }
        for (RowId a : new_in[i]) {
          for (RowId b : new_in[j]) check(a, b);
        }
      }
    }
  }
  for (RowId r : fresh) MarkRowChecked(r);
  MergeIntoMaintained(out);
  return out;
}

void ThetaJoinDetector::BuildRangeIndex() {
  for (PartitionStats& part : boundaries_) {
    part.sorted_vals.assign(cols_.size(), {});
    for (size_t c = 0; c < cols_.size(); ++c) {
      std::vector<double>& vals = part.sorted_vals[c];
      vals.reserve(part.end - part.begin);
      for (size_t s = part.begin; s < part.end; ++s) {
        vals.push_back(cols_[c]->num[sorted_[s]]);
      }
      std::sort(vals.begin(), vals.end());
    }
  }
  range_index_built_ = true;
}

const std::vector<double>& ThetaJoinDetector::EstimateErrors() {
  EnsureFresh();
  if (range_vio_valid_) return range_vio_;
  if (!range_index_built_) BuildRangeIndex();
  const size_t p = boundaries_.size();
  range_vio_.assign(p, 0.0);
  const std::vector<size_t>& cols = dc_->involved_columns();
  auto slot = [&](size_t col) {
    return static_cast<size_t>(
        std::lower_bound(cols.begin(), cols.end(), col) - cols.begin());
  };
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = 0; j < p; ++j) {
      if (i == j) continue;  // diagonal handled through Support()
      // Oriented estimate: partition i binds t1, partition j binds t2 (the
      // loop visits both orders).
      if (!OrientationFeasible(boundaries_[i], boundaries_[j])) continue;
      const double rows_i = static_cast<double>(boundaries_[i].end -
                                                boundaries_[i].begin);
      const double rows_j = static_cast<double>(boundaries_[j].end -
                                                boundaries_[j].begin);
      // Conflicts lie in the overlap of the boundary ranges of each order
      // atom (the paper's range_vio); atoms whose ranges are disjoint in
      // the satisfying direction restrict nothing, so only overlapping
      // atoms bound the estimate.
      double estimate = std::min(rows_i, rows_j);
      for (const PredicateAtom& a : dc_->atoms()) {
        if (a.right_is_constant || a.left_tuple == a.right_tuple) continue;
        if (a.op == CompareOp::kEq || a.op == CompareOp::kNeq) continue;
        const PartitionStats& lp =
            a.left_tuple == 0 ? boundaries_[i] : boundaries_[j];
        const PartitionStats& rp =
            a.right_tuple == 0 ? boundaries_[i] : boundaries_[j];
        const size_t ls = slot(a.left_column);
        const size_t rs = slot(a.right_column);
        const double lo = std::max(lp.min_val[ls], rp.min_val[rs]);
        const double hi = std::min(lp.max_val[ls], rp.max_val[rs]);
        if (lo > hi) continue;  // non-restrictive: feasibility already held
        const double ci = static_cast<double>(
            CountRowsInRange(lp, ls, lo, hi));
        const double cj = static_cast<double>(
            CountRowsInRange(rp, rs, lo, hi));
        estimate = std::min(estimate, std::min(ci, cj));
      }
      range_vio_[i] += estimate;
    }
  }
  range_vio_valid_ = true;
  return range_vio_;
}

size_t ThetaJoinDetector::CountRowsInRange(const PartitionStats& part,
                                           size_t slot, double lo,
                                           double hi) const {
  const std::vector<double>& vals = part.sorted_vals[slot];
  auto first = std::lower_bound(vals.begin(), vals.end(), lo);
  auto last = std::upper_bound(first, vals.end(), hi);
  return static_cast<size_t>(last - first);
}

double ThetaJoinDetector::EstimateAccuracy(
    const std::vector<RowId>& result_rows) {
  if (result_rows.empty()) return 1.0;
  EstimateErrors();
  const double* sort_num = cols_[sort_slot_]->num.data();
  double lo = kInf, hi = -kInf;
  for (RowId r : result_rows) {
    const double v = sort_num[r];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double errors = 0.0;
  for (size_t i = 0; i < boundaries_.size(); ++i) {
    const PartitionStats& part = boundaries_[i];
    if (part.begin == part.end) continue;
    const double pmin = sort_num[sorted_[part.begin]];
    const double pmax = sort_num[sorted_[part.end - 1]];
    if (pmax < lo || pmin > hi) continue;
    // Charge the answer only with the slice of the partition's estimated
    // conflicts that its range actually covers.
    double fraction = 1.0;
    if (pmax > pmin) {
      const double cover = std::min(hi, pmax) - std::max(lo, pmin);
      fraction = std::max(0.0, std::min(1.0, cover / (pmax - pmin)));
    }
    errors += range_vio_[i] * fraction;
  }
  // Note: Algorithm 2 line 6 computes errors/(|qa|+errors) and the paper
  // narrates the result as "accuracy". We return the complementary clean
  // fraction so that *higher is cleaner*; callers trigger full cleaning when
  // this drops below the threshold (matching the Fig. 10 narrative).
  const double dirtiness =
      errors / (static_cast<double>(result_rows.size()) + errors);
  return 1.0 - dirtiness;
}

double ThetaJoinDetector::Support() const {
  const size_t p = boundaries_.size();
  if (p == 0) return 1.0;
  // A partition is covered once all its rows were cross-checked.
  std::vector<bool> covered(p, true);
  for (size_t i = 0; i < p; ++i) {
    for (size_t s = boundaries_[i].begin; s < boundaries_[i].end; ++s) {
      if (!checked_[sorted_[s]]) {
        covered[i] = false;
        break;
      }
    }
  }
  size_t done = 0, total = 0;
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = i; j < p; ++j) {
      ++total;
      if (covered[i] && covered[j]) ++done;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(done) / static_cast<double>(total);
}

bool ThetaJoinDetector::FullyChecked() {
  EnsureFresh();
  return checked_count_ == checked_.size();
}

bool ThetaJoinDetector::QuiescentForReaders() const {
  // Mirrors EnsureFresh's staleness checks without acting on them: any
  // condition that would make EnsureFresh rebuild or resync means a writer
  // pass is owed, so the reader path must not be taken. column() is a pure
  // read here as long as writers left the cache fresh (the engine's
  // RefreshDerivedState guarantee).
  ColumnCache& cache = table_->columns();
  const std::vector<size_t>& cols = dc_->involved_columns();
  if (cols_.size() != cols.size() || cache.id() != cache_id_) return false;
  for (size_t i = 0; i < cols.size(); ++i) {
    const ColumnCache::Column& col = cache.column(cols[i]);
    if (col.generation != col_generations_[i]) return false;
    if (col.num.data() != col_data_[i]) return false;
  }
  if (checked_.size() != table_->num_rows()) return false;
  if (deleted_log_pos_ != table_->deleted_rows_log().size()) return false;
  return checked_count_ == checked_.size();
}

}  // namespace daisy
