// Delta-maintained FD violation state (the BigDansing group-by detection
// primitive kept warm across ingest batches).
//
// Where DetectFdViolations re-groups the whole relation per call, an
// FdDeltaDetector holds the lhs-group membership and per-group rhs
// histograms and folds each TableDelta in with O(|delta|) map updates. The
// maintained state is bit-identical to a from-scratch detection at every
// point: ViolatingGroups() reproduces DetectFdViolations over the live
// rows, and ApplyDelta patches an FdRuleStats in place (dirty lhs keys,
// dirty rhs values with cross-group reference counting, violating
// row/group counts, the candidate-width average) so statistics pruning
// reflects post-ingest reality — including re-engaging after a delete
// removes a rule's last violation.
//
// ApplyDelta also reports which live rows' repair state the batch made
// stale — members of touched groups that violate now (earlier repairs are
// incomplete against the new data) or violated before (a delete resolved
// the group; the survivors' fixes must be retracted). Per-rule checked
// bookkeeping uncovers them and provenance drops the rule's records (the
// caller passes them to CleanSelect::ApplyDelta /
// ProvenanceStore::DropRuleRecords).
//
// Grouping runs on original values (Value-keyed maps), which never change
// in the engine's repair model — repairs only attach candidate sets. An
// in-place original-value edit requires Rebuild().

#ifndef DAISY_DETECT_FD_DELTA_H_
#define DAISY_DETECT_FD_DELTA_H_

#include <unordered_map>
#include <vector>

#include "clean/statistics.h"
#include "constraints/denial_constraint.h"
#include "detect/fd_detector.h"
#include "detect/group_by.h"
#include "storage/table.h"

namespace daisy {

class FdDeltaDetector {
 public:
  /// Requires dc->IsFd(). `table` and `dc` must outlive the detector.
  /// Builds the group state over the live rows immediately.
  FdDeltaDetector(const Table* table, const DenialConstraint* dc);

  /// Rebuilds the group state from scratch over the live rows (needed only
  /// after an in-place original-value edit).
  void Rebuild();

  /// Folds one ingest batch into the group state in O(|delta|). When
  /// `stats` is non-null it is patched to exactly what a fresh
  /// Statistics::Compute would produce. Returns the live rows whose
  /// repair state may be stale — members of every touched group that
  /// violates after the batch *or* violated before it (a delete resolving
  /// a group leaves survivors whose fixes must be retracted) — ascending
  /// and unique.
  std::vector<RowId> ApplyDelta(const TableDelta& delta, FdRuleStats* stats);

  /// Materializes the maintained groups in the canonical detection order —
  /// identical to DetectFdViolations(table, dc, table.AllRowIds(),
  /// include_clean).
  std::vector<FdGroup> ViolatingGroups(bool include_clean = false) const;

  /// Rows currently in some violating group (the paper's ε).
  size_t num_violating_rows() const { return violating_rows_; }
  size_t num_violating_groups() const { return violating_groups_; }

  /// Fully (re)derives `stats` from the maintained state (sets + counters).
  void ExportStats(FdRuleStats* stats) const;

 private:
  struct GroupState {
    std::vector<RowId> rows;  ///< live members, ascending
    std::unordered_map<Value, size_t, ValueHash> hist;  ///< rhs frequencies
    bool violating() const { return hist.size() > 1; }
  };
  using GroupMapState =
      std::unordered_map<GroupKey, GroupState, GroupKeyHash, GroupKeyEq>;

  void RemoveContribution(const GroupKey& key, FdRuleStats* stats);
  void AddContribution(const GroupKey& key, const GroupState& group,
                       FdRuleStats* stats);
  void MirrorCounters(FdRuleStats* stats) const;

  const Table* table_;
  const DenialConstraint* dc_;
  GroupMapState groups_;
  /// rhs value -> number of violating groups whose histogram contains it
  /// (a value leaves the dirty set only when the last such group does).
  std::unordered_map<Value, size_t, ValueHash> dirty_rhs_refs_;
  size_t violating_rows_ = 0;
  size_t violating_groups_ = 0;
  size_t candidate_sum_ = 0;  ///< Σ distinct rhs over violating groups
};

}  // namespace daisy

#endif  // DAISY_DETECT_FD_DELTA_H_
