// General DC violation detection via a partitioned cartesian-product matrix
// (Okcan & Riedewald-style theta-join [25]), with the paper's two pruning
// levels and incremental ("partial theta-join") checking:
//
//  * the sorted domain of the primary inequality attribute is split into
//    p partitions; a matrix cell (i, j) is the cross product of partitions
//    i and j;
//  * cells whose boundary ranges cannot satisfy every atom in either tuple
//    orientation are pruned (partition pruning);
//  * within a surviving cell, sorted order restricts the candidate pairs
//    (intra-partition pruning, Example 4);
//  * the symmetric lower triangle is never checked;
//  * rows already cross-checked by earlier queries are skipped, so query i
//    only pays for (result_i x unseen) comparisons (Section 5.2.2);
//  * partition-boundary overlaps give the violation estimates of
//    Algorithm 2 (Estimate_Errors), driving the accuracy-based decision to
//    fall back to full cleaning.
//
// Execution is columnar: partitions, pruning statistics, and pair checks
// all read the table's ColumnCache flat arrays instead of dispatching on
// Value variants per cell. DC atoms are compiled once per partition build:
// numeric-only columns compare as doubles, same-column atoms compare dense
// Value::Compare ranks (exact for strings and for int64 beyond double
// precision), and only atoms relating two different string-bearing columns
// fall back to per-cell Value evaluation. Double comparisons on mixed
// int/double columns match Value semantics for |v| < 2^53.
//
// The cache's content generations are checked on every public entry: a
// repair that edits an original value invalidates the affected column
// projection, rebuilds the partitions, and resets the checked-row coverage
// (the old coverage was computed on different data); candidate-only repairs
// keep both.
//
// Ingest deltas are cheaper than content changes: appended rows extend the
// coverage vector as unchecked and only the partitions are rebuilt (from
// the incrementally-maintained cache sorted index — no re-sort); deleted
// rows are dropped from the partitions, marked trivially checked, and
// pruned from the maintained violation set. Appended rows are *integrated*
// in arrival order — exactly new x preexisting + new x new pairs, at a
// fraction of a full re-detection — either explicitly through
// DetectDelta(delta) (the engine's ingest path, which wants the found
// violations for repair) or automatically at the start of the next
// DetectAll/DetectIncremental (rows appended through the plain Table API
// must not silently lose new-vs-checked-row coverage). Either way each
// cross pair is checked exactly once and the maintained set stays
// identical to a from-scratch DetectAll.
//
// DetectAll optionally fans the surviving partition cells out over a small
// thread pool. Results are merged in cell order, so the violation vector is
// identical for any thread count.

#ifndef DAISY_DETECT_THETA_JOIN_H_
#define DAISY_DETECT_THETA_JOIN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "constraints/denial_constraint.h"
#include "storage/column_cache.h"
#include "storage/table.h"

// The per-atom evaluator runs a few times per candidate pair — billions of
// times per scan — and must not pay a call. GCC's cost model leaves it
// out of line without the hint.
#if defined(__GNUC__) || defined(__clang__)
#define DAISY_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define DAISY_ALWAYS_INLINE inline
#endif

namespace daisy {

/// A violating pair in tuple orientation: `t1` binds the DC's t1, `t2` its
/// t2. For single-tuple constraints t1 == t2.
struct ViolationPair {
  RowId t1;
  RowId t2;
  bool operator==(const ViolationPair& other) const {
    return t1 == other.t1 && t2 == other.t2;
  }
  bool operator<(const ViolationPair& other) const {
    if (t1 != other.t1) return t1 < other.t1;
    return t2 < other.t2;
  }
};

namespace detail {

/// Conservative feasibility of `[lmin,lmax] op [rmin,rmax]`: can *some*
/// pair of values drawn from the two ranges satisfy the comparison?
/// Exposed for unit tests.
bool RangeFeasible(double lmin, double lmax, CompareOp op, double rmin,
                   double rmax);

}  // namespace detail

/// The persistable slice of a ThetaJoinDetector: the coverage and the
/// maintained violation set — the state whose loss would force a restarted
/// engine to pay a full O(n²) re-detection. Partitions, compiled atoms and
/// estimate caches are re-derived from the table on import.
struct ThetaPersistState {
  std::vector<uint8_t> checked;  ///< one byte per row, 1 = cross-checked
  uint64_t integrated_rows = 0;
  uint64_t deleted_log_pos = 0;
  uint64_t retractions = 0;
  std::vector<ViolationPair> maintained;
};

/// Stateful detector bound to one table + one (non-FD) denial constraint.
/// The state tracks which rows have been cross-checked so far, making
/// repeated calls incremental exactly as in the paper.
class ThetaJoinDetector {
 public:
  /// `partitions` is the paper's p (number of ranges the sorted domain is
  /// split into); `threads` caps the DetectAll worker pool (1 = serial).
  /// The table and constraint must outlive the detector.
  ThetaJoinDetector(const Table* table, const DenialConstraint* dc,
                    size_t partitions = 16, size_t threads = 1);

  /// Checks the full upper-triangle matrix (both tuple orientations per
  /// pair) with partition pruning. Marks every row checked. The result is
  /// deterministic and independent of the thread count.
  std::vector<ViolationPair> DetectAll();

  /// Partial theta-join: checks `result_rows` (must be sorted ascending)
  /// against every row not yet mutually checked, then marks `result_rows`
  /// as checked. Violations entirely inside the unseen part are
  /// intentionally not detected.
  std::vector<ViolationPair> DetectIncremental(
      const std::vector<RowId>& result_rows);

  /// Delta detection: integrates every live appended row up to the end of
  /// this batch (earlier un-integrated arrivals first, in order), checking
  /// each against every preexisting row (checked or not) and against each
  /// other — exactly new x old + new x new pairs — then marks them
  /// checked, restoring the "checked means cross-checked against every
  /// row" invariant the appends broke. Returns the new violations (both
  /// orientations, like DetectAll) and folds them into
  /// maintained_violations(). Already-integrated or deleted batch rows
  /// are skipped, so re-feeding a delta is a no-op.
  std::vector<ViolationPair> DetectDelta(const TableDelta& delta);

  /// The violation set maintained across DetectAll / DetectIncremental /
  /// DetectDelta calls, sorted by (t1, t2): every violating pair whose
  /// endpoints are both covered (pairs touching deleted rows are pruned).
  /// After full coverage it equals a from-scratch DetectAll, bit for bit.
  const std::vector<ViolationPair>& maintained_violations();

  /// Size of the maintained set *without* syncing retractions first — a
  /// pure read for plan-time cardinality estimation (the estimator runs
  /// under the engine's shared lock, where a sync's mutation would race
  /// other readers). May overcount by pairs whose deletion has not been
  /// folded in yet; writers sync before unlocking, so the slack is
  /// bounded by the current writer section.
  size_t maintained_violation_count() const { return maintained_.size(); }

  /// Number of pairs deletions pruned from the maintained set since the
  /// last call (syncs first). The engine uses a non-zero result as the
  /// signal that repairs derived from the retracted evidence must be
  /// re-derived from the surviving maintained_violations().
  size_t ConsumeRetractions();

  /// Algorithm 2, Estimate_Errors: per-partition estimated violation counts
  /// derived from boundary-range overlaps. Index = partition id.
  const std::vector<double>& EstimateErrors();

  /// Estimated accuracy of a query answer: 1 - errors/(|qa| + errors) where
  /// `errors` sums the estimates of the partitions the answer overlaps
  /// (Algorithm 2 lines 4-6). Returns 1 for an empty answer.
  double EstimateAccuracy(const std::vector<RowId>& result_rows);

  /// Fraction of upper-triangle partition cells already fully checked
  /// (Algorithm 2 line 7).
  double Support() const;

  /// True once every live row is marked checked (syncs with pending table
  /// deltas first, so freshly appended rows count as unchecked).
  bool FullyChecked();

  /// Syncs the detector with the table/cache state (the EnsureFresh pass
  /// every public entry runs). The engine's writer sections call this
  /// before releasing the exclusive lock so shared-path readers find the
  /// detector fresh and never mutate it.
  void Refresh() { EnsureFresh(); }

  /// Non-mutating probe for the engine's shared read path: true when the
  /// detector is fresh (no column rebuild, append, or delete pending) AND
  /// every row is checked — i.e. any Detect*/FullyChecked call in the
  /// current state would be a pure read. Conservatively false whenever a
  /// writer pass would have work to do.
  bool QuiescentForReaders() const;

  size_t num_partitions() const { return boundaries_.size(); }

  // Instrumentation (reset by each Detect* call).
  size_t pairs_checked() const { return pairs_checked_; }
  size_t partitions_pruned() const { return partitions_pruned_; }

  /// Disables partition pruning (ablation switch for benches). Written
  /// conditionally: concurrent quiescent readers re-apply the value already
  /// set, which must not count as a write.
  void set_pruning_enabled(bool enabled) {
    if (pruning_enabled_ != enabled) pruning_enabled_ = enabled;
  }

  /// Ablation switch: evaluate pairs through per-cell Value dispatch
  /// (DenialConstraint::ViolatedBy) instead of the compiled flat arrays.
  void set_columnar_enabled(bool enabled) { columnar_enabled_ = enabled; }

  /// DetectAll worker-pool size; clamped to at least 1.
  void set_threads(size_t threads) { threads_ = threads == 0 ? 1 : threads; }

  /// Captures the coverage state for a snapshot (syncs with the table
  /// first, so pending deltas are folded in before the copy).
  ThetaPersistState ExportState();

  /// Restores a previously exported coverage state onto a detector freshly
  /// constructed over the snapshotted table. The partitions and compiled
  /// atoms are rebuilt from the live table; only the coverage, the
  /// integration watermarks, and the maintained violation set are
  /// installed. Fails if the state does not match the table's dimensions.
  Status ImportState(const ThetaPersistState& state);

 private:
  struct PartitionStats {
    size_t begin = 0;  ///< range [begin, end) into sorted_
    size_t end = 0;
    // Per involved-column slot: min/max of the numeric projection.
    std::vector<double> min_val;
    std::vector<double> max_val;
    // Per involved-column slot: the partition's projections, sorted —
    // Estimate_Errors range counts binary-search these (built lazily).
    std::vector<std::vector<double>> sorted_vals;
  };

  /// One DC atom compiled against the column cache. `kind` picks the
  /// representation that reproduces EvalCompare exactly (see file comment).
  struct CompiledAtom {
    enum class Kind {
      kNum,        ///< column vs column, both numeric-only: doubles
      kRank,       ///< column vs same column: dense Compare ranks
      kNumConst,   ///< numeric-only column vs numeric constant
      kRankConst,  ///< column vs constant located in the rank domain
      kNullConst,  ///< column vs null constant
      kRow,        ///< fallback: per-cell Value evaluation
    };
    Kind kind = Kind::kRow;
    CompareOp op = CompareOp::kEq;
    int left_tuple = 0;
    int right_tuple = 0;
    /// False when every referenced column is null-free: the null-mask loads
    /// are skipped entirely in the hot loop.
    bool check_nulls = true;
    const double* lnum = nullptr;
    const uint8_t* lnulls = nullptr;
    const uint32_t* lranks = nullptr;
    const double* rnum = nullptr;
    const uint8_t* rnulls = nullptr;
    const uint32_t* rranks = nullptr;
    double cnum = 0.0;      ///< kNumConst: the constant as double
    uint32_t clo = 0;       ///< kRankConst: #distinct values Compare< const
    bool chas_eq = false;   ///< kRankConst: some value Compare== const
    size_t atom_index = 0;  ///< kRow: index into dc_->atoms()
  };

  void EnsureFresh();
  /// Coverage reset shared by the constructor and the content-change path:
  /// everything unchecked except tombstones, delete log consumed, no rows
  /// owing an integration pass, maintained set empty.
  void ResetCoverage();
  /// Every checked_ write goes through here so checked_count_ stays exact
  /// (QuiescentForReaders answers full coverage in O(1) on the read path).
  void MarkRowChecked(RowId r) {
    if (!checked_[r]) {
      checked_[r] = true;
      ++checked_count_;
    }
  }
  void MergeIntoMaintained(const std::vector<ViolationPair>& found);
  /// Integrates appended rows [integrated_rows_, end) — the DetectDelta
  /// core, shared with the auto-drain DetectAll/DetectIncremental run
  /// first. Appends to pairs_checked_.
  std::vector<ViolationPair> DrainAppends(RowId end);
  void BuildPartitions();
  void CompileAtoms(ColumnCache& cache);
  void BuildRangeIndex();
  bool PairFeasible(const PartitionStats& a, const PartitionStats& b) const;
  bool OrientationFeasible(const PartitionStats& t1_part,
                           const PartitionStats& t2_part) const;
  DAISY_ALWAYS_INLINE bool EvalAtomFlat(const CompiledAtom& atom, RowId a,
                                        RowId b) const;
  std::pair<bool, bool> CheckBoth(RowId a, RowId b) const;
  void CheckPair(RowId a, RowId b, std::vector<ViolationPair>* out,
                 size_t* pairs) const;
  void ScanCell(size_t i, size_t j, std::vector<ViolationPair>* out,
                size_t* pairs) const;
  size_t CountRowsInRange(const PartitionStats& p, size_t slot, double lo,
                          double hi) const;

  const Table* table_;
  const DenialConstraint* dc_;
  size_t requested_partitions_;
  size_t threads_ = 1;
  bool pruning_enabled_ = true;
  bool columnar_enabled_ = true;

  size_t sort_column_ = 0;             ///< primary inequality attribute
  size_t sort_slot_ = 0;               ///< its slot in involved_columns()
  std::vector<RowId> sorted_;          ///< live rows, sorted by sort_column_
  std::vector<PartitionStats> boundaries_;
  std::vector<bool> checked_;          ///< row id -> cross-checked?
  size_t checked_count_ = 0;           ///< number of true bits in checked_
  /// Violations among covered rows, sorted by (t1, t2); see
  /// maintained_violations().
  std::vector<ViolationPair> maintained_;
  /// Pairs deletions pruned from maintained_ since ConsumeRetractions.
  size_t retractions_ = 0;
  /// Prefix of the table's deleted-rows log already folded into the state.
  size_t deleted_log_pos_ = 0;
  /// Rows below this id are integrated: cross-checked against the checked
  /// set (or known-unchecked). Rows at or above arrived later and still
  /// owe their new x old pass.
  RowId integrated_rows_ = 0;

  // Flat-array state, rebuilt whenever an involved column's storage or
  // content moves (see EnsureFresh). cols_ is indexed by involved-column
  // slot; col_data_ snapshots the array addresses the compiled atoms
  // point into.
  uint64_t cache_id_ = 0;
  std::vector<const ColumnCache::Column*> cols_;
  std::vector<uint64_t> col_generations_;
  std::vector<const double*> col_data_;
  std::vector<CompiledAtom> compiled_;
  bool range_index_built_ = false;

  std::vector<double> range_vio_;      ///< Estimate_Errors cache
  bool range_vio_valid_ = false;

  size_t pairs_checked_ = 0;
  size_t partitions_pruned_ = 0;
};

}  // namespace daisy

#endif  // DAISY_DETECT_THETA_JOIN_H_
