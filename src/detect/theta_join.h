// General DC violation detection via a partitioned cartesian-product matrix
// (Okcan & Riedewald-style theta-join [25]), with the paper's two pruning
// levels and incremental ("partial theta-join") checking:
//
//  * the sorted domain of the primary inequality attribute is split into
//    p partitions; a matrix cell (i, j) is the cross product of partitions
//    i and j;
//  * cells whose boundary ranges cannot satisfy every atom in either tuple
//    orientation are pruned (partition pruning);
//  * within a surviving cell, sorted order restricts the candidate pairs
//    (intra-partition pruning, Example 4);
//  * the symmetric lower triangle is never checked;
//  * rows already cross-checked by earlier queries are skipped, so query i
//    only pays for (result_i x unseen) comparisons (Section 5.2.2);
//  * partition-boundary overlaps give the violation estimates of
//    Algorithm 2 (Estimate_Errors), driving the accuracy-based decision to
//    fall back to full cleaning.

#ifndef DAISY_DETECT_THETA_JOIN_H_
#define DAISY_DETECT_THETA_JOIN_H_

#include <cstdint>
#include <vector>

#include "constraints/denial_constraint.h"
#include "storage/table.h"

namespace daisy {

/// A violating pair in tuple orientation: `t1` binds the DC's t1, `t2` its
/// t2. For single-tuple constraints t1 == t2.
struct ViolationPair {
  RowId t1;
  RowId t2;
  bool operator==(const ViolationPair& other) const {
    return t1 == other.t1 && t2 == other.t2;
  }
};

/// Stateful detector bound to one table + one (non-FD) denial constraint.
/// The state tracks which rows have been cross-checked so far, making
/// repeated calls incremental exactly as in the paper.
class ThetaJoinDetector {
 public:
  /// `partitions` is the paper's p (number of ranges the sorted domain is
  /// split into). The table and constraint must outlive the detector.
  ThetaJoinDetector(const Table* table, const DenialConstraint* dc,
                    size_t partitions = 16);

  /// Checks the full upper-triangle matrix (both tuple orientations per
  /// pair) with partition pruning. Marks every row checked.
  std::vector<ViolationPair> DetectAll();

  /// Partial theta-join: checks `result_rows` against every row not yet
  /// mutually checked, then marks `result_rows` as checked. Violations
  /// entirely inside the unseen part are intentionally not detected.
  std::vector<ViolationPair> DetectIncremental(
      const std::vector<RowId>& result_rows);

  /// Algorithm 2, Estimate_Errors: per-partition estimated violation counts
  /// derived from boundary-range overlaps. Index = partition id.
  const std::vector<double>& EstimateErrors();

  /// Estimated accuracy of a query answer: 1 - errors/(|qa| + errors) where
  /// `errors` sums the estimates of the partitions the answer overlaps
  /// (Algorithm 2 lines 4-6). Returns 1 for an empty answer.
  double EstimateAccuracy(const std::vector<RowId>& result_rows);

  /// Fraction of upper-triangle partition cells already fully checked
  /// (Algorithm 2 line 7).
  double Support() const;

  /// True once every row is marked checked.
  bool FullyChecked() const;

  size_t num_partitions() const { return boundaries_.size(); }

  // Instrumentation (reset by each Detect* call).
  size_t pairs_checked() const { return pairs_checked_; }
  size_t partitions_pruned() const { return partitions_pruned_; }

  /// Disables partition pruning (ablation switch for benches).
  void set_pruning_enabled(bool enabled) { pruning_enabled_ = enabled; }

 private:
  struct PartitionStats {
    size_t begin = 0;  ///< range [begin, end) into sorted_
    size_t end = 0;
    // Per involved column: min/max of original values (numeric only).
    std::vector<double> min_val;
    std::vector<double> max_val;
  };

  void BuildPartitions();
  bool PairFeasible(const PartitionStats& a, const PartitionStats& b) const;
  bool OrientationFeasible(const PartitionStats& t1_part,
                           const PartitionStats& t2_part) const;
  void CheckPair(RowId a, RowId b, std::vector<ViolationPair>* out);
  double ColumnValue(RowId r, size_t col) const;
  size_t CountRowsInRange(const PartitionStats& p, size_t col, double lo,
                          double hi) const;

  const Table* table_;
  const DenialConstraint* dc_;
  size_t requested_partitions_;
  bool pruning_enabled_ = true;

  size_t sort_column_ = 0;             ///< primary inequality attribute
  std::vector<RowId> sorted_;          ///< all rows, sorted by sort_column_
  std::vector<size_t> position_;       ///< row id -> index in sorted_
  std::vector<PartitionStats> boundaries_;
  std::vector<bool> checked_;          ///< row id -> cross-checked?
  std::vector<std::vector<bool>> cell_checked_;  ///< partition cell coverage

  std::vector<double> range_vio_;      ///< Estimate_Errors cache
  bool range_vio_valid_ = false;

  size_t pairs_checked_ = 0;
  size_t partitions_pruned_ = 0;
};

}  // namespace daisy

#endif  // DAISY_DETECT_THETA_JOIN_H_
