#include "detect/fd_detector.h"

#include <algorithm>
#include <cstdint>

namespace daisy {

void SortFdGroups(std::vector<FdGroup>* out) {
  // Deterministic order for tests: sort groups by key.
  std::sort(out->begin(), out->end(), [](const FdGroup& a, const FdGroup& b) {
    for (size_t i = 0; i < std::min(a.lhs_key.size(), b.lhs_key.size()); ++i) {
      const int c = a.lhs_key[i].Compare(b.lhs_key[i]);
      if (c != 0) return c < 0;
    }
    return a.lhs_key.size() < b.lhs_key.size();
  });
}

void SortFdRhsHistogram(std::vector<std::pair<Value, size_t>>* hist) {
  std::sort(hist->begin(), hist->end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first.Compare(b.first) < 0;
            });
}

std::vector<FdGroup> DetectFdViolations(const Table& table,
                                        const DenialConstraint& dc,
                                        const std::vector<RowId>& rows,
                                        bool include_clean) {
  const FdView& fd = dc.fd();
  GroupMap groups = GroupRowsBy(table, fd.lhs, rows);
  const ColumnCache::Column& rhs_col = table.columns().column(fd.rhs);
  std::vector<FdGroup> out;
  out.reserve(groups.size());
  // Scratch histogram over rhs dictionary codes, reset per group by
  // touching only the codes the group used.
  std::vector<size_t> counts(rhs_col.dict.size(), 0);
  std::vector<uint32_t> seen_codes;
  for (auto& [key, members] : groups) {
    seen_codes.clear();
    for (RowId r : members) {
      const uint32_t code = rhs_col.codes[r];
      if (counts[code]++ == 0) seen_codes.push_back(code);
    }
    const size_t distinct = seen_codes.size();
    if (distinct <= 1 && !include_clean) {
      for (uint32_t code : seen_codes) counts[code] = 0;
      continue;
    }
    FdGroup group;
    group.lhs_key = key;
    group.rhs_histogram.reserve(distinct);
    for (uint32_t code : seen_codes) {
      group.rhs_histogram.emplace_back(rhs_col.dict[code], counts[code]);
      counts[code] = 0;
    }
    group.rows = std::move(members);
    SortFdRhsHistogram(&group.rhs_histogram);
    out.push_back(std::move(group));
  }
  SortFdGroups(&out);
  return out;
}

std::vector<FdGroup> DetectFdViolationsRowPath(const Table& table,
                                               const DenialConstraint& dc,
                                               const std::vector<RowId>& rows,
                                               bool include_clean) {
  const FdView& fd = dc.fd();
  GroupMap groups = GroupRowsByRowPath(table, fd.lhs, rows);
  std::vector<FdGroup> out;
  out.reserve(groups.size());
  for (auto& [key, members] : groups) {
    // Histogram of rhs values inside the group.
    std::unordered_map<Value, size_t, ValueHash> hist;
    for (RowId r : members) {
      hist[table.cell(r, fd.rhs).original()] += 1;
    }
    if (hist.size() <= 1 && !include_clean) continue;
    FdGroup group;
    group.lhs_key = key;
    group.rows = std::move(members);
    group.rhs_histogram.assign(hist.begin(), hist.end());
    SortFdRhsHistogram(&group.rhs_histogram);
    out.push_back(std::move(group));
  }
  SortFdGroups(&out);
  return out;
}

size_t CountFdViolatingRows(const Table& table, const DenialConstraint& dc) {
  size_t count = 0;
  for (const FdGroup& g :
       DetectFdViolations(table, dc, table.AllRowIds(), false)) {
    count += g.total();
  }
  return count;
}

}  // namespace daisy
