#include "detect/fd_detector.h"

#include <algorithm>

namespace daisy {

std::vector<FdGroup> DetectFdViolations(const Table& table,
                                        const DenialConstraint& dc,
                                        const std::vector<RowId>& rows,
                                        bool include_clean) {
  const FdView& fd = dc.fd();
  GroupMap groups = GroupRowsBy(table, fd.lhs, rows);
  std::vector<FdGroup> out;
  out.reserve(groups.size());
  for (auto& [key, members] : groups) {
    // Histogram of rhs values inside the group.
    std::unordered_map<Value, size_t, ValueHash> hist;
    for (RowId r : members) {
      hist[table.cell(r, fd.rhs).original()] += 1;
    }
    if (hist.size() <= 1 && !include_clean) continue;
    FdGroup group;
    group.lhs_key = key;
    group.rows = std::move(members);
    group.rhs_histogram.assign(hist.begin(), hist.end());
    std::sort(group.rhs_histogram.begin(), group.rhs_histogram.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first.Compare(b.first) < 0;
              });
    out.push_back(std::move(group));
  }
  // Deterministic order for tests: sort groups by key.
  std::sort(out.begin(), out.end(), [](const FdGroup& a, const FdGroup& b) {
    for (size_t i = 0; i < std::min(a.lhs_key.size(), b.lhs_key.size()); ++i) {
      const int c = a.lhs_key[i].Compare(b.lhs_key[i]);
      if (c != 0) return c < 0;
    }
    return a.lhs_key.size() < b.lhs_key.size();
  });
  return out;
}

size_t CountFdViolatingRows(const Table& table, const DenialConstraint& dc) {
  size_t count = 0;
  for (const FdGroup& g :
       DetectFdViolations(table, dc, table.AllRowIds(), false)) {
    count += g.total();
  }
  return count;
}

}  // namespace daisy
