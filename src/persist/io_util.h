// Small file helpers shared by the snapshot and WAL code paths:
// whole-file reads, atomic (tmp + rename + directory fsync) writes, and
// directory listing/creation. All fallible operations return Status.
//
// Every helper runs its file operations through an injectable Env
// (persist/env.h); the default is the POSIX passthrough, tests pass a
// FaultInjectingEnv to script failures deterministically.

#ifndef DAISY_PERSIST_IO_UTIL_H_
#define DAISY_PERSIST_IO_UTIL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "persist/env.h"

namespace daisy {
namespace persist {

/// Reads the entire file into a string.
Result<std::string> ReadFileFully(const std::string& path,
                                  Env* env = nullptr);

/// Durably replaces `path` with `bytes`: writes `path + ".tmp"`, fsyncs
/// it, renames it over `path`, and fsyncs the parent directory so the
/// rename itself survives a crash. On failure the tmp file is removed
/// best-effort; a crash can still strand it — DaisyEngine::Open and
/// Checkpoint sweep orphan "*.tmp" files from the persistence dir.
Status WriteFileAtomic(const std::string& path, const std::string& bytes,
                       Env* env = nullptr);

/// Creates `dir` if missing (one level; parents must exist).
Status EnsureDirectory(const std::string& dir, Env* env = nullptr);

/// Names (not paths) of the directory's entries, sorted ascending.
Result<std::vector<std::string>> ListDirectory(const std::string& dir,
                                               Env* env = nullptr);

/// Deletes a file; missing files are not an error.
Status RemoveFileIfExists(const std::string& path, Env* env = nullptr);

/// Truncates `path` to `size` bytes and fsyncs it (torn-tail cleanup).
Status TruncateFile(const std::string& path, uint64_t size,
                    Env* env = nullptr);

/// Fsyncs the directory entry list (used after create/rename/unlink).
Status SyncDirectory(const std::string& dir, Env* env = nullptr);

}  // namespace persist
}  // namespace daisy

#endif  // DAISY_PERSIST_IO_UTIL_H_
