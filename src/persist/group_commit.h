// Group commit: a leader/follower commit queue that batches
// concurrently-arriving WAL records into one write() + one fsync.
//
// Per-op fsync is the writer-throughput ceiling — every committed writer
// operation pays a full device flush before its call returns. Under N
// concurrent writers the queue amortizes: ops enqueue their encoded
// records *under the engine's exclusive lock* (so queue order == epoch
// order == WAL replay order, preserving the serial-equivalence contract),
// release the lock, and wait. The first waiter to find the queue
// unled becomes the leader, takes every pending record, and appends them
// with WalWriter::AppendBatch — all frames in one write, one fsync for
// the lot — then distributes the shared result. Each op is acked to its
// caller only after that sync returns: durability-before-ack is exactly
// the single-op contract, paid once per batch instead of once per op.
//
// Failure semantics (the PR 6 health machine, batched): a failed batch
// write/sync fails *every* op in the batch — none may be acked, because
// none is provably durable (the file may hold a torn multi-record tail;
// ReadWal's prefix rule discards it frame by frame). The queue then
// poisons itself: later enqueues and pending records fail fast with the
// original cause instead of appending after a hole — a record written
// *behind* a torn region would be unreachable on replay yet acked.
// Reset() (after a successful generation rotation) re-arms the queue on
// the fresh WAL.
//
// Locking: the queue's internal mutex is always acquired *after* the
// engine lock (Enqueue/Flush/Reset run under it) or with no engine lock
// held at all (Wait); the queue never acquires the engine lock, so no
// cycle exists. WAL file I/O stays serialized: the single leader runs
// outside both locks, and every snapshot/rotation path Flush()es first —
// which waits out an in-flight leader — before touching the Env.

#ifndef DAISY_PERSIST_GROUP_COMMIT_H_
#define DAISY_PERSIST_GROUP_COMMIT_H_

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "persist/wal.h"

namespace daisy {
namespace persist {

class GroupCommitQueue {
 public:
  /// One enqueued record's completion slot. `done`/`result` are guarded
  /// by the queue mutex (not annotatable: the Ticket outlives any one
  /// queue and the analysis can't tie a struct to an external capability);
  /// shared_ptr so the op thread and the queue can both outlive each
  /// other safely.
  struct Ticket {
    Status result = Status::OK();
    bool done = false;
  };
  using TicketPtr = std::shared_ptr<Ticket>;

  /// `writer` must outlive the queue or be replaced via Reset() first.
  explicit GroupCommitQueue(WalWriter* writer) : writer_(writer) {}

  GroupCommitQueue(const GroupCommitQueue&) = delete;
  GroupCommitQueue& operator=(const GroupCommitQueue&) = delete;

  /// Queues one encoded record for the next batch. MUST be called under
  /// the engine's exclusive lock — that is what makes queue order equal
  /// epoch order. If the queue is poisoned the returned ticket is already
  /// done, carrying the poison cause (the record is not queued: it would
  /// land behind a torn region and be unreachable on replay).
  TicketPtr Enqueue(std::string payload);

  /// Blocks until `ticket`'s batch committed (leading the commit if the
  /// queue is unled) and returns its result. MUST be called *without* the
  /// engine lock — the whole point is that the engine stays available to
  /// other ops while this one waits for the shared fsync.
  Status Wait(const TicketPtr& ticket);

  /// Drains the queue: waits out an in-flight leader, then commits every
  /// pending record inline. Called under the engine's exclusive lock
  /// (which is what guarantees no new Enqueue can race the drain) before
  /// any snapshot/rotation I/O, so WAL writes never interleave with other
  /// Env calls. Returns the first failure (a poisoned queue reports its
  /// poison even when empty — the caller is about to trust the file).
  Status Flush();

  /// Re-arms the queue on a fresh WAL after a generation rotation:
  /// replaces the writer and clears the poison. Caller must hold the
  /// engine's exclusive lock and have Flush()ed (the queue must be idle).
  void Reset(WalWriter* writer);

  /// Durability counters of the underlying writer, read race-free (waits
  /// out an in-flight leader). Counts since the last Reset().
  WalCommitStats Stats();

  /// Test hook: while held, no waiter takes leadership, so records from
  /// concurrent ops pile into one pending batch; releasing commits them
  /// together. Flush() ignores the hold.
  void TestHoldCommits(bool hold);

  /// Test hook: records currently pending (not yet taken by a leader).
  size_t TestPendingDepth();

 private:
  Mutex mu_;
  CondVar cv_;
  WalWriter* writer_ DAISY_GUARDED_BY(mu_);
  /// FIFO in engine-epoch order; each entry is (encoded record, ticket).
  std::vector<std::pair<std::string, TicketPtr>> pending_
      DAISY_GUARDED_BY(mu_);
  /// a leader is running AppendBatch
  bool committing_ DAISY_GUARDED_BY(mu_) = false;
  bool hold_ DAISY_GUARDED_BY(mu_) = false;  ///< TestHoldCommits
  Status poison_ DAISY_GUARDED_BY(mu_) = Status::OK();
};

}  // namespace persist
}  // namespace daisy

#endif  // DAISY_PERSIST_GROUP_COMMIT_H_
