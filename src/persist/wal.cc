#include "persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/metrics.h"
#include "persist/format.h"
#include "persist/io_util.h"
#include "persist/snapshot.h"

namespace daisy {
namespace persist {

namespace {

// ------------------------------------------------- statement round-trip --

void EncodeColumnRef(const ColumnRef& ref, BinaryWriter* w) {
  w->WriteString(ref.table);
  w->WriteString(ref.column);
}

Result<ColumnRef> DecodeColumnRef(BinaryReader* r) {
  ColumnRef ref;
  DAISY_ASSIGN_OR_RETURN(ref.table, r->ReadString());
  DAISY_ASSIGN_OR_RETURN(ref.column, r->ReadString());
  return ref;
}

void EncodeExpr(const Expr& e, BinaryWriter* w) {
  w->WriteU8(static_cast<uint8_t>(e.kind));
  if (e.kind == Expr::Kind::kCmp) {
    EncodeColumnRef(e.left, w);
    w->WriteU8(static_cast<uint8_t>(e.op));
    w->WriteU8(e.right_is_column ? 1 : 0);
    if (e.right_is_column) {
      EncodeColumnRef(e.right_col, w);
    } else {
      w->WriteValue(e.right_val);
    }
    return;
  }
  w->WriteU32(static_cast<uint32_t>(e.children.size()));
  for (const auto& child : e.children) EncodeExpr(*child, w);
}

Result<std::unique_ptr<Expr>> DecodeExpr(BinaryReader* r, int depth) {
  if (depth > 64) {
    return Status::ParseError("wal: WHERE tree deeper than 64 levels");
  }
  auto e = std::make_unique<Expr>();
  DAISY_ASSIGN_OR_RETURN(uint8_t kind, r->ReadU8());
  if (kind > static_cast<uint8_t>(Expr::Kind::kCmp)) {
    return Status::ParseError("wal: unknown expr kind " +
                              std::to_string(kind));
  }
  e->kind = static_cast<Expr::Kind>(kind);
  if (e->kind == Expr::Kind::kCmp) {
    DAISY_ASSIGN_OR_RETURN(e->left, DecodeColumnRef(r));
    DAISY_ASSIGN_OR_RETURN(uint8_t op, r->ReadU8());
    if (op > static_cast<uint8_t>(CompareOp::kGeq)) {
      return Status::ParseError("wal: unknown compare op " +
                                std::to_string(op));
    }
    e->op = static_cast<CompareOp>(op);
    DAISY_ASSIGN_OR_RETURN(uint8_t is_col, r->ReadU8());
    e->right_is_column = is_col != 0;
    if (e->right_is_column) {
      DAISY_ASSIGN_OR_RETURN(e->right_col, DecodeColumnRef(r));
    } else {
      DAISY_ASSIGN_OR_RETURN(e->right_val, r->ReadValue());
    }
    return e;
  }
  DAISY_ASSIGN_OR_RETURN(uint32_t nchildren, r->ReadU32());
  e->children.reserve(nchildren);
  for (uint32_t i = 0; i < nchildren; ++i) {
    DAISY_ASSIGN_OR_RETURN(auto child, DecodeExpr(r, depth + 1));
    e->children.push_back(std::move(child));
  }
  return e;
}

void EncodeStmt(const SelectStmt& stmt, BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(stmt.select_list.size()));
  for (const SelectItem& item : stmt.select_list) {
    w->WriteU8(item.star ? 1 : 0);
    EncodeColumnRef(item.col, w);
    w->WriteU8(static_cast<uint8_t>(item.agg));
    w->WriteString(item.alias);
  }
  w->WriteU32(static_cast<uint32_t>(stmt.tables.size()));
  for (const std::string& t : stmt.tables) w->WriteString(t);
  w->WriteU8(stmt.where != nullptr ? 1 : 0);
  if (stmt.where != nullptr) EncodeExpr(*stmt.where, w);
  w->WriteU32(static_cast<uint32_t>(stmt.group_by.size()));
  for (const ColumnRef& ref : stmt.group_by) EncodeColumnRef(ref, w);
}

Result<SelectStmt> DecodeStmt(BinaryReader* r) {
  SelectStmt stmt;
  DAISY_ASSIGN_OR_RETURN(uint32_t nitems, r->ReadU32());
  stmt.select_list.reserve(nitems);
  for (uint32_t i = 0; i < nitems; ++i) {
    SelectItem item;
    DAISY_ASSIGN_OR_RETURN(uint8_t star, r->ReadU8());
    item.star = star != 0;
    DAISY_ASSIGN_OR_RETURN(item.col, DecodeColumnRef(r));
    DAISY_ASSIGN_OR_RETURN(uint8_t agg, r->ReadU8());
    if (agg > static_cast<uint8_t>(AggFunc::kMax)) {
      return Status::ParseError("wal: unknown aggregate " +
                                std::to_string(agg));
    }
    item.agg = static_cast<AggFunc>(agg);
    DAISY_ASSIGN_OR_RETURN(item.alias, r->ReadString());
    stmt.select_list.push_back(std::move(item));
  }
  DAISY_ASSIGN_OR_RETURN(uint32_t ntables, r->ReadU32());
  stmt.tables.reserve(ntables);
  for (uint32_t i = 0; i < ntables; ++i) {
    DAISY_ASSIGN_OR_RETURN(std::string t, r->ReadString());
    stmt.tables.push_back(std::move(t));
  }
  DAISY_ASSIGN_OR_RETURN(uint8_t has_where, r->ReadU8());
  if (has_where != 0) {
    DAISY_ASSIGN_OR_RETURN(stmt.where, DecodeExpr(r, 0));
  }
  DAISY_ASSIGN_OR_RETURN(uint32_t ngroup, r->ReadU32());
  stmt.group_by.reserve(ngroup);
  for (uint32_t i = 0; i < ngroup; ++i) {
    DAISY_ASSIGN_OR_RETURN(ColumnRef ref, DecodeColumnRef(r));
    stmt.group_by.push_back(std::move(ref));
  }
  return stmt;
}

}  // namespace

std::string EncodeWalAppendRows(const std::string& table,
                                const std::vector<std::vector<Value>>& rows) {
  BinaryWriter w;
  w.WriteU8(kWalAppendRows);
  w.WriteString(table);
  w.WriteU64(rows.size());
  for (const std::vector<Value>& row : rows) {
    w.WriteU32(static_cast<uint32_t>(row.size()));
    for (const Value& v : row) w.WriteValue(v);
  }
  return w.TakeBuffer();
}

std::string EncodeWalDeleteRows(const std::string& table,
                                const std::vector<RowId>& ids) {
  BinaryWriter w;
  w.WriteU8(kWalDeleteRows);
  w.WriteString(table);
  w.WriteU64(ids.size());
  for (RowId id : ids) w.WriteU64(id);
  return w.TakeBuffer();
}

std::string EncodeWalQuery(const SelectStmt& stmt) {
  BinaryWriter w;
  w.WriteU8(kWalQuery);
  EncodeStmt(stmt, &w);
  return w.TakeBuffer();
}

std::string EncodeWalCleanAll() {
  BinaryWriter w;
  w.WriteU8(kWalCleanAll);
  return w.TakeBuffer();
}

std::string EncodeWalImportProvenance(
    const std::string& table,
    const std::map<ProvenanceStore::CellKey, std::vector<RepairRecord>>&
        records) {
  BinaryWriter w;
  w.WriteU8(kWalImportProvenance);
  w.WriteString(table);
  EncodeProvenanceRecords(records, &w);
  return w.TakeBuffer();
}

Result<WalRecord> DecodeWalRecord(const std::string& payload) {
  BinaryReader r(payload);
  WalRecord record;
  DAISY_ASSIGN_OR_RETURN(record.type, r.ReadU8());
  switch (record.type) {
    case kWalAppendRows: {
      DAISY_ASSIGN_OR_RETURN(record.table, r.ReadString());
      DAISY_ASSIGN_OR_RETURN(uint64_t nrows, r.ReadCount(4));
      record.rows.reserve(nrows);
      for (uint64_t i = 0; i < nrows; ++i) {
        DAISY_ASSIGN_OR_RETURN(uint32_t nvals, r.ReadU32());
        std::vector<Value> row;
        row.reserve(nvals);
        for (uint32_t k = 0; k < nvals; ++k) {
          DAISY_ASSIGN_OR_RETURN(Value v, r.ReadValue());
          row.push_back(std::move(v));
        }
        record.rows.push_back(std::move(row));
      }
      break;
    }
    case kWalDeleteRows: {
      DAISY_ASSIGN_OR_RETURN(record.table, r.ReadString());
      DAISY_ASSIGN_OR_RETURN(uint64_t nids, r.ReadCount(8));
      record.ids.reserve(nids);
      for (uint64_t i = 0; i < nids; ++i) {
        DAISY_ASSIGN_OR_RETURN(uint64_t id, r.ReadU64());
        record.ids.push_back(id);
      }
      break;
    }
    case kWalQuery: {
      DAISY_ASSIGN_OR_RETURN(record.stmt, DecodeStmt(&r));
      break;
    }
    case kWalCleanAll:
      break;
    case kWalImportProvenance: {
      DAISY_ASSIGN_OR_RETURN(record.table, r.ReadString());
      DAISY_ASSIGN_OR_RETURN(record.provenance, DecodeProvenanceRecords(&r));
      break;
    }
    default:
      return Status::ParseError("wal: unknown record type " +
                                std::to_string(record.type));
  }
  if (!r.AtEnd()) {
    return Status::ParseError("wal: record has " +
                              std::to_string(r.remaining()) +
                              " trailing bytes");
  }
  return record;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                     Env* env) {
  if (env == nullptr) env = Env::Default();
  DAISY_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         env->NewWritableFile(path, /*truncate=*/true));
  std::unique_ptr<WalWriter> writer(new WalWriter(path, std::move(file)));
  const std::string magic(kWalMagic, sizeof(kWalMagic));
  DAISY_RETURN_IF_ERROR(writer->file_->Append(magic));
  DAISY_RETURN_IF_ERROR(writer->file_->Sync());
  return writer;
}

Result<std::unique_ptr<WalWriter>> WalWriter::OpenForAppend(
    const std::string& path, uint64_t valid_bytes, Env* env) {
  if (env == nullptr) env = Env::Default();
  DAISY_RETURN_IF_ERROR(TruncateFile(path, valid_bytes, env));
  DAISY_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         env->NewWritableFile(path, /*truncate=*/false));
  return std::unique_ptr<WalWriter>(new WalWriter(path, std::move(file)));
}

WalWriter::~WalWriter() = default;

namespace {

// Frame = u32 payload length + u32 crc + payload (persist/format.h).
Status AppendFramed(std::string* out, const std::string& payload) {
  if (payload.size() > UINT32_MAX) {
    return Status::IOError("WAL record of " + std::to_string(payload.size()) +
                           " bytes exceeds the u32 frame limit");
  }
  BinaryWriter frame;
  frame.WriteU32(static_cast<uint32_t>(payload.size()));
  frame.WriteU32(Crc32(payload.data(), payload.size()));
  out->append(frame.TakeBuffer());
  out->append(payload);
  return Status::OK();
}

}  // namespace

namespace {

// Cached instrument pointers for the WAL commit path (one relaxed add per
// field per commit; the registry lookup happens once per process).
struct WalMetrics {
  Counter* records;
  Counter* batches;
  Counter* fsyncs;
  Histogram* batch_records;

  static WalMetrics& Get() {
    static WalMetrics* const m = new WalMetrics();
    return *m;
  }

  WalMetrics() {
    MetricsRegistry& r = MetricsRegistry::Global();
    records = r.GetCounter("daisy_persist_wal_records_total",
                           "WAL records appended (durable commits)");
    batches = r.GetCounter("daisy_persist_wal_batches_total",
                           "WAL frame writes (group-commit batches)");
    fsyncs = r.GetCounter("daisy_persist_wal_fsyncs_total",
                          "WAL fsyncs issued");
    batch_records = r.GetHistogram("daisy_persist_wal_batch_records",
                                   /*first_bound=*/1, /*num_buckets=*/10,
                                   "Records per committed WAL batch");
  }
};

}  // namespace

Status WalWriter::Append(const std::string& payload) {
  std::string bytes;
  DAISY_RETURN_IF_ERROR(AppendFramed(&bytes, payload));
  DAISY_RETURN_IF_ERROR(file_->Append(bytes));
  DAISY_RETURN_IF_ERROR(file_->Sync());
  stats_.records += 1;
  stats_.batches += 1;
  stats_.syncs += 1;
  stats_.max_batch_records = std::max<uint64_t>(stats_.max_batch_records, 1);
  WalMetrics& m = WalMetrics::Get();
  m.records->Increment();
  m.batches->Increment();
  m.fsyncs->Increment();
  m.batch_records->Observe(1);
  return Status::OK();
}

Status WalWriter::AppendBatch(const std::vector<std::string>& payloads) {
  if (payloads.empty()) return Status::OK();
  std::string bytes;
  for (const std::string& payload : payloads) {
    DAISY_RETURN_IF_ERROR(AppendFramed(&bytes, payload));
  }
  DAISY_RETURN_IF_ERROR(file_->Append(bytes));
  DAISY_RETURN_IF_ERROR(file_->Sync());
  stats_.records += payloads.size();
  stats_.batches += 1;
  stats_.syncs += 1;
  stats_.max_batch_records =
      std::max<uint64_t>(stats_.max_batch_records, payloads.size());
  WalMetrics& m = WalMetrics::Get();
  m.records->Increment(payloads.size());
  m.batches->Increment();
  m.fsyncs->Increment();
  m.batch_records->Observe(payloads.size());
  return Status::OK();
}

Result<WalContents> ReadWal(const std::string& path, Env* env) {
  DAISY_ASSIGN_OR_RETURN(std::string bytes, ReadFileFully(path, env));
  if (bytes.size() < sizeof(kWalMagic)) {
    // Crash inside Create, before the magic was durable: an empty log
    // whose header must be rewritten.
    WalContents torn;
    torn.torn_tail = !bytes.empty();
    torn.header_valid = false;
    torn.record_offsets.push_back(0);
    return torn;
  }
  if (std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::ParseError("not a daisy WAL: " + path);
  }
  WalContents out;
  uint64_t off = sizeof(kWalMagic);
  while (off < bytes.size()) {
    // Frame = u32 length + u32 crc + payload. Anything short of a full,
    // checksum-valid frame is the torn tail of a crashed append: stop.
    if (bytes.size() - off < 8) {
      out.torn_tail = true;
      break;
    }
    BinaryReader frame(bytes.data() + off, 8);
    const uint32_t len = frame.ReadU32().value();
    const uint32_t crc = frame.ReadU32().value();
    if (bytes.size() - off - 8 < len) {
      out.torn_tail = true;
      break;
    }
    const char* payload = bytes.data() + off + 8;
    if (crc != Crc32(payload, len)) {
      out.torn_tail = true;
      break;
    }
    out.record_offsets.push_back(off);
    out.payloads.emplace_back(payload, len);
    off += 8 + len;
  }
  // On a torn tail the loop breaks before advancing `off`, so in both
  // exits `off` is exactly the end of the last complete record.
  out.valid_bytes = off;
  out.record_offsets.push_back(out.valid_bytes);
  return out;
}

}  // namespace persist
}  // namespace daisy
