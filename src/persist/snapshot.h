// Versioned binary snapshots of the full engine state (see
// persist/format.h for the framing).
//
// The table section is columnar: per column a dictionary of distinct
// original values (exact-type equality — int 5 and double 5.0 keep their
// own entries, unlike the Equals-unified ColumnCache codes) plus one u32
// code per physical row, followed by the sparse list of probabilistic
// cells with their candidate sets, the tombstone log, and the ingest
// counters. Dead rows are serialized like live ones — their storage is
// provenance and row ids must stay stable across a restart.
//
// The state sections capture what a restarted engine cannot cheaply
// re-derive: per-rule checked bitmaps and pending ingest work, theta-join
// coverage + maintained violation sets, cost-model ledgers, and the full
// ProvenanceStore. FD group state and statistics are deliberately NOT
// serialized: FdDeltaDetector's maintained state is bit-identical to a
// fresh build over the restored rows (the PR 3 differential invariant), so
// Prepare() reconstructs them in O(n) with no detection or repair work.

#ifndef DAISY_PERSIST_SNAPSHOT_H_
#define DAISY_PERSIST_SNAPSHOT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "clean/clean_operators.h"
#include "clean/cost_model.h"
#include "common/binary_io.h"
#include "common/status.h"
#include "constraints/constraint_set.h"
#include "persist/env.h"
#include "detect/theta_join.h"
#include "repair/provenance.h"
#include "storage/table.h"

namespace daisy {
namespace persist {

/// Per-rule persisted cleaning state, keyed by rule name.
struct RuleSnapshot {
  std::string rule;
  CleanSelectPersistState op;
  CostModel::Ledger cost;
  bool has_theta = false;
  ThetaPersistState theta;  ///< meaningful only when has_theta
};

/// The semantics-affecting engine options, persisted so recovery replays
/// the WAL under the exact configuration that produced it (the perf-only
/// knobs — thread counts, columnar ablation — are free to differ; results
/// are deterministic across them by contract). Mirrors the corresponding
/// DaisyOptions fields; kept as a separate struct so the persist layer
/// does not depend on the engine header.
struct PersistedEngineOptions {
  uint8_t mode = 1;  ///< 0 = kIncremental, 1 = kAdaptive
  double accuracy_threshold = 0.5;
  uint64_t theta_partitions = 16;
  bool use_statistics_pruning = true;
  bool theta_pruning = true;
  /// v2+: cost-based optimizer (cleanσ placement changes which rows a WAL
  /// query marks checked, so replay must run under the same flag). v1
  /// snapshots default it to true, the engine default.
  bool optimizer = true;
};

/// The complete deserialized engine state of one snapshot file.
struct EngineSnapshot {
  uint64_t epoch = 0;
  PersistedEngineOptions options;
  /// Reconstructed tables, in serialized (name) order, with tombstones and
  /// ingest counters restored and cells carrying their candidate sets.
  std::vector<Table> tables;
  std::vector<DenialConstraint> constraints;
  std::vector<RuleSnapshot> rules;
  /// table name -> raw repair records.
  std::map<std::string,
           std::map<ProvenanceStore::CellKey, std::vector<RepairRecord>>>
      provenance;
};

/// Write-side view over live engine state (no copies of table data).
struct EngineSnapshotView {
  uint64_t epoch = 0;
  PersistedEngineOptions options;
  std::vector<const Table*> tables;
  const ConstraintSet* constraints = nullptr;
  std::vector<RuleSnapshot> rules;  ///< exported state (owned copies)
  const std::map<std::string, ProvenanceStore>* provenance = nullptr;
};

/// Serializes `view` to `path` atomically: the bytes are written to
/// `path.tmp`, fsync'd, renamed over `path`, and the directory entry is
/// fsync'd — a crash mid-write never leaves a half snapshot under the
/// final name.
Status WriteSnapshot(const std::string& path, const EngineSnapshotView& view,
                     Env* env = nullptr);

/// Parses and validates a snapshot file (magic, version, per-section CRCs,
/// internal consistency of every decoded structure).
Result<EngineSnapshot> ReadSnapshot(const std::string& path,
                                    Env* env = nullptr);

// Record-payload helpers shared with the WAL encoding.
void EncodeProvenanceRecords(
    const std::map<ProvenanceStore::CellKey, std::vector<RepairRecord>>& recs,
    BinaryWriter* w);
Result<std::map<ProvenanceStore::CellKey, std::vector<RepairRecord>>>
DecodeProvenanceRecords(BinaryReader* r);

}  // namespace persist
}  // namespace daisy

#endif  // DAISY_PERSIST_SNAPSHOT_H_
