// A deterministic fault-injecting Env wrapper (the test half of the
// injectable I/O layer, see persist/env.h).
//
// Every Env and WritableFile operation passes through one global call
// counter, so a fault schedule is expressed in call indices and replays
// identically run after run:
//
//   FaultInjectingEnv env;
//   env.FailCallAt(17, EIO);      // the 18th I/O call fails with EIO
//   env.FailNthSync(2, EIO);      // the 2nd fsync (file or dir) fails
//   env.SetWriteBudget(4096);     // ENOSPC past 4 KiB, short write at the
//                                 // boundary (produces torn frames)
//   env.CrashAtCall(17);          // all I/O from index 17 on performs
//                                 // nothing — simulated process death
//
// The fault-schedule sweep test runs a workload once to learn the call
// count, then re-runs it once per index with a fault armed there,
// asserting the engine either completes each op fully or degrades to
// read-only with a bit-identical-recoverable on-disk state.
//
// Not thread-safe: the engine serializes all persistence I/O behind its
// writer lock, which is the only place an Env is used.

#ifndef DAISY_PERSIST_FAULT_ENV_H_
#define DAISY_PERSIST_FAULT_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "persist/env.h"

namespace daisy {
namespace persist {

class FaultInjectingEnv : public Env {
 public:
  /// Wraps `base` (Env::Default() when null). `base` must outlive this.
  explicit FaultInjectingEnv(Env* base = nullptr);

  // --- Fault schedule (each clause arms independently; Clear resets). ---

  /// The call with global index `index` (0-based) fails with `err` without
  /// performing the operation.
  void FailCallAt(uint64_t index, int err);

  /// The `n`-th fsync (1-based; WritableFile::Sync and SyncDir both count)
  /// fails with `err` without syncing.
  void FailNthSync(uint64_t n, int err);

  /// Appends past `bytes` total fail with ENOSPC; an append crossing the
  /// boundary writes the part that fits (a short write) and then fails —
  /// exactly how a filling disk tears a WAL frame.
  void SetWriteBudget(uint64_t bytes);

  /// Every call with index >= `index` fails without performing the
  /// operation: the moment the process "died". Reads fail too — restart
  /// the workload against a fresh Env to model recovery.
  void CrashAtCall(uint64_t index);

  /// Disarms every fault. Counters keep running.
  void ClearFaults();

  // --- Introspection. ---

  uint64_t calls() const { return calls_; }
  uint64_t syncs() const { return syncs_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t faults_fired() const { return faults_fired_; }
  bool crashed() const { return crashed_; }

  // --- Env interface (gated passthrough). ---

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDir(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status SyncDir(const std::string& dir) override;

 private:
  friend class FaultedFile;
  static constexpr uint64_t kNever = ~0ULL;

  /// Advances the call counter and returns the injected error for this
  /// call, or OK to pass through. `is_sync` calls also consult the
  /// fsync-count clause.
  Status Gate(const char* op, const std::string& path, bool is_sync);

  Env* base_;
  uint64_t calls_ = 0;
  uint64_t syncs_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t faults_fired_ = 0;
  uint64_t fail_at_ = kNever;
  int fail_err_ = 0;
  uint64_t fail_sync_n_ = kNever;
  int fail_sync_err_ = 0;
  uint64_t write_budget_ = kNever;
  uint64_t crash_at_ = kNever;
  bool crashed_ = false;
};

}  // namespace persist
}  // namespace daisy

#endif  // DAISY_PERSIST_FAULT_ENV_H_
