#include "persist/fault_env.h"

#include <cerrno>
#include <cstring>

namespace daisy {
namespace persist {

namespace {

Status InjectedError(const char* op, const std::string& path, int err) {
  return Status::IOError(std::string("fault injection: ") + op + " " + path +
                         ": " + std::strerror(err));
}

}  // namespace

/// Gates every file operation through the owning env's schedule. Holds the
/// base file so a wrapped file closes (and flushes nothing extra) exactly
/// like the real one.
class FaultedFile : public WritableFile {
 public:
  FaultedFile(FaultInjectingEnv* env, std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(const char* data, size_t size) override {
    DAISY_RETURN_IF_ERROR(env_->Gate("write", path(), /*is_sync=*/false));
    if (env_->write_budget_ != FaultInjectingEnv::kNever) {
      const uint64_t remaining =
          env_->write_budget_ > env_->bytes_written_
              ? env_->write_budget_ - env_->bytes_written_
              : 0;
      if (size > remaining) {
        // Short write: the prefix that fits lands on disk, then ENOSPC —
        // the torn-frame shape a filling disk actually produces.
        if (remaining > 0) {
          DAISY_RETURN_IF_ERROR(
              base_->Append(data, static_cast<size_t>(remaining)));
        }
        env_->bytes_written_ += remaining;
        ++env_->faults_fired_;
        return InjectedError("write", path(), ENOSPC);
      }
    }
    DAISY_RETURN_IF_ERROR(base_->Append(data, size));
    env_->bytes_written_ += size;
    return Status::OK();
  }

  Status Sync() override {
    DAISY_RETURN_IF_ERROR(env_->Gate("fsync", path(), /*is_sync=*/true));
    return base_->Sync();
  }

  Status Close() override {
    DAISY_RETURN_IF_ERROR(env_->Gate("close", path(), /*is_sync=*/false));
    return base_->Close();
  }

  const std::string& path() const override { return base_->path(); }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectingEnv::FaultInjectingEnv(Env* base)
    : base_(base != nullptr ? base : Env::Default()) {}

void FaultInjectingEnv::FailCallAt(uint64_t index, int err) {
  fail_at_ = index;
  fail_err_ = err;
}

void FaultInjectingEnv::FailNthSync(uint64_t n, int err) {
  fail_sync_n_ = n;
  fail_sync_err_ = err;
}

void FaultInjectingEnv::SetWriteBudget(uint64_t bytes) {
  write_budget_ = bytes;
}

void FaultInjectingEnv::CrashAtCall(uint64_t index) { crash_at_ = index; }

void FaultInjectingEnv::ClearFaults() {
  fail_at_ = kNever;
  fail_err_ = 0;
  fail_sync_n_ = kNever;
  fail_sync_err_ = 0;
  write_budget_ = kNever;
  crash_at_ = kNever;
  crashed_ = false;
}

Status FaultInjectingEnv::Gate(const char* op, const std::string& path,
                               bool is_sync) {
  const uint64_t index = calls_++;
  if (is_sync) ++syncs_;
  if (index >= crash_at_) {
    crashed_ = true;
    ++faults_fired_;
    return Status::IOError(std::string("fault injection: simulated crash at ") +
                           op + " " + path);
  }
  if (index == fail_at_) {
    ++faults_fired_;
    return InjectedError(op, path, fail_err_);
  }
  if (is_sync && syncs_ == fail_sync_n_) {
    ++faults_fired_;
    return InjectedError(op, path, fail_sync_err_);
  }
  return Status::OK();
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  DAISY_RETURN_IF_ERROR(Gate("open", path, /*is_sync=*/false));
  DAISY_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                         base_->NewWritableFile(path, truncate));
  return std::unique_ptr<WritableFile>(
      new FaultedFile(this, std::move(base)));
}

Result<std::string> FaultInjectingEnv::ReadFile(const std::string& path) {
  DAISY_RETURN_IF_ERROR(Gate("read", path, /*is_sync=*/false));
  return base_->ReadFile(path);
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  DAISY_RETURN_IF_ERROR(Gate("rename", from, /*is_sync=*/false));
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  DAISY_RETURN_IF_ERROR(Gate("ftruncate", path, /*is_sync=*/false));
  return base_->TruncateFile(path, size);
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  DAISY_RETURN_IF_ERROR(Gate("unlink", path, /*is_sync=*/false));
  return base_->RemoveFile(path);
}

Status FaultInjectingEnv::CreateDir(const std::string& dir) {
  DAISY_RETURN_IF_ERROR(Gate("mkdir", dir, /*is_sync=*/false));
  return base_->CreateDir(dir);
}

Result<std::vector<std::string>> FaultInjectingEnv::ListDir(
    const std::string& dir) {
  DAISY_RETURN_IF_ERROR(Gate("readdir", dir, /*is_sync=*/false));
  return base_->ListDir(dir);
}

Status FaultInjectingEnv::SyncDir(const std::string& dir) {
  DAISY_RETURN_IF_ERROR(Gate("fsync dir", dir, /*is_sync=*/true));
  return base_->SyncDir(dir);
}

}  // namespace persist
}  // namespace daisy
