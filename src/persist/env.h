// The injectable I/O environment behind every persistence file operation.
//
// io_util, WalWriter and the snapshot reader/writer perform all their file
// system work through an Env, so a test can substitute a
// FaultInjectingEnv (persist/fault_env.h) and script exactly which write,
// fsync or rename fails — every persistence failure path becomes a
// deterministic, replayable test instead of a hope that the disk
// misbehaves on cue. Env::Default() is the POSIX passthrough the engine
// uses in production.
//
// Error contract: every failing operation returns an IOError whose message
// carries the operation, the path, and the errno root cause
// ("write /dir/wal-000001.dwal: No space left on device"), so a Status
// that bubbles out of the engine names the exact file that broke.

#ifndef DAISY_PERSIST_ENV_H_
#define DAISY_PERSIST_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace daisy {
namespace persist {

/// A sequential write handle. Append/Sync map to write(2)/fsync(2); the
/// destructor closes the descriptor (without syncing — call Sync first for
/// durability).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const char* data, size_t size) = 0;
  Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }
  virtual Status Sync() = 0;
  virtual Status Close() = 0;

  virtual const std::string& path() const = 0;
};

/// The file-system surface the persistence layer needs. Implementations
/// must be safe to share across engines; the engine serializes its own
/// calls behind the writer lock.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for writing: truncate=true creates/empties it,
  /// truncate=false appends to an existing file.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Reads the entire file into a string. NotFound for a missing file.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (rename(2) semantics).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// Truncates `path` to `size` bytes and fsyncs it.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// Deletes a file; a missing file is not an error.
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Creates `dir` if missing (one level; parents must exist).
  virtual Status CreateDir(const std::string& dir) = 0;

  /// Names (not paths) of the directory's entries, sorted ascending.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  /// Fsyncs the directory entry list (after create/rename/unlink).
  virtual Status SyncDir(const std::string& dir) = 0;

  /// The shared POSIX passthrough environment (never null, never deleted).
  static Env* Default();
};

}  // namespace persist
}  // namespace daisy

#endif  // DAISY_PERSIST_ENV_H_
