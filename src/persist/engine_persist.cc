// DaisyEngine's durable-persistence surface: EnablePersistence /
// Checkpoint / Open and the WAL append hook. Lives in persist/ so the
// engine core stays free of on-disk format knowledge; these are member
// functions because they capture and restore private engine state.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "clean/daisy_engine.h"
#include "common/logger.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "persist/env.h"
#include "persist/format.h"
#include "persist/io_util.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace daisy {

namespace {

std::string SeqName(const char* prefix, uint64_t seq, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%06" PRIu64 "%s", prefix, seq, suffix);
  return buf;
}

std::string SnapshotPath(const std::string& dir, uint64_t seq) {
  return dir + "/" + SeqName("snapshot-", seq, ".dsnap");
}

std::string WalPath(const std::string& dir, uint64_t seq) {
  return dir + "/" + SeqName("wal-", seq, ".dwal");
}

bool IsTmpName(const std::string& name) {
  const std::string suffix = ".tmp";
  return name.size() > suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Parses "snapshot-NNNNNN.dsnap" into NNNNNN; nullopt for other names.
bool ParseSnapshotSeq(const std::string& name, uint64_t* seq) {
  const std::string prefix = "snapshot-";
  const std::string suffix = ".dsnap";
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *seq = value;
  return true;
}

}  // namespace

DaisyEngine::~DaisyEngine() = default;
DaisyEngine::DaisyEngine(DaisyEngine&&) noexcept = default;
DaisyEngine& DaisyEngine::operator=(DaisyEngine&&) noexcept = default;

Result<persist::GroupCommitQueue::TicketPtr> DaisyEngine::LogWalLocked(
    const std::string& payload) {
  if (wal_ == nullptr || wal_replay_) {
    return persist::GroupCommitQueue::TicketPtr();
  }
  if (wal_queue_ != nullptr) {
    // Group commit: queue the record while still holding the exclusive
    // lock (queue order == epoch order == replay order) and let the
    // caller wait for the shared fsync after unlocking. A poisoned queue
    // hands back an already-failed ticket; AwaitWalTicket degrades.
    return wal_queue_->Enqueue(payload);
  }
  const Status appended = wal_->Append(payload);
  // The operation already applied in memory; only its durability failed.
  // Degrade instead of fail-stopping: reads keep serving the (intact)
  // in-memory state, writers are rejected until TryRecover() re-arms
  // persistence by snapshotting the current state — which makes this
  // operation durable after all. Without a recovery, a restart loses it
  // (it was never acknowledged as durable to the caller — the error
  // propagates out of the operation).
  if (!appended.ok()) return DegradeLocked(appended);
  return persist::GroupCommitQueue::TicketPtr();
}

Status DaisyEngine::AwaitWalTicket(
    const persist::GroupCommitQueue::TicketPtr& ticket) {
  if (ticket == nullptr) return Status::OK();
  const Status committed = wal_queue_->Wait(ticket);
  if (committed.ok()) return Status::OK();
  // Every op in the failed batch lands here (and so do enqueuers that hit
  // the poisoned queue): the first one through transitions the machine,
  // the rest see the transition already made — DegradeLocked is
  // idempotent. None of them is acked; their in-memory effects stay,
  // exactly like a failed sync append.
  WriterLock lock(&*mu_);
  return DegradeLocked(committed);
}

persist::WalCommitStats DaisyEngine::WalStats() const {
  ReaderLock lock(&*mu_);
  // With group commit the leader mutates the writer's counters outside
  // mu_; read them through the queue, which waits out an in-flight
  // leader. In sync mode mu_ alone serializes the writer.
  if (wal_queue_ != nullptr) return wal_queue_->Stats();
  return wal_ != nullptr ? wal_->stats() : persist::WalCommitStats{};
}

void DaisyEngine::SweepOrphanTmpFilesLocked() {
  // `*.tmp` files are atomic-write staging files whose rename never
  // happened (crash or injected fault mid-WriteFileAtomic). They are
  // never part of any generation; removing them is always safe.
  Result<std::vector<std::string>> names =
      persist::ListDirectory(persist_dir_, env_);
  if (!names.ok()) return;
  bool removed = false;
  for (const std::string& name : names.value()) {
    if (!IsTmpName(name)) continue;
    if (persist::RemoveFileIfExists(persist_dir_ + "/" + name, env_).ok()) {
      removed = true;
    }
  }
  // The sweep itself is best-effort; so is making it durable.
  if (removed) (void)persist::SyncDirectory(persist_dir_, env_);
}

Status DaisyEngine::WriteSnapshotLocked(const std::string& path) {
  persist::EngineSnapshotView view;
  view.epoch = epoch_;
  view.options.mode =
      options_.mode == DaisyOptions::Mode::kIncremental ? 0 : 1;
  view.options.accuracy_threshold = options_.accuracy_threshold;
  view.options.theta_partitions = options_.theta_partitions;
  view.options.use_statistics_pruning = options_.use_statistics_pruning;
  view.options.theta_pruning = options_.theta_pruning;
  view.options.optimizer = options_.optimizer;
  for (const std::string& name : db_->TableNames()) {
    DAISY_ASSIGN_OR_RETURN(const Table* table,
                           static_cast<const Database*>(db_)->GetTable(name));
    view.tables.push_back(table);
  }
  view.constraints = &constraints_;
  view.provenance = &provenance_;
  for (auto& [name, state] : rules_) {
    persist::RuleSnapshot rs;
    rs.rule = name;
    rs.op = state.op->ExportPersistState();
    rs.cost = state.cost.ledger();
    if (state.theta != nullptr) {
      rs.has_theta = true;
      rs.theta = state.theta->ExportState();
    }
    view.rules.push_back(std::move(rs));
  }
  return persist::WriteSnapshot(path, view, env_);
}

Status DaisyEngine::EnablePersistence(const std::string& dir,
                                      persist::Env* env) {
  WriterLock lock(&*mu_);
  if (!prepared_) return Status::Internal("Prepare() must be called first");
  if (!persist_dir_.empty()) {
    return Status::AlreadyExists("persistence already enabled at " +
                                 persist_dir_);
  }
  env_ = env != nullptr ? env : persist::Env::Default();
  DAISY_RETURN_IF_ERROR(persist::EnsureDirectory(dir, env_));
  DAISY_ASSIGN_OR_RETURN(std::vector<std::string> names,
                         persist::ListDirectory(dir, env_));
  for (const std::string& name : names) {
    uint64_t seq = 0;
    if (ParseSnapshotSeq(name, &seq)) {
      return Status::AlreadyExists(
          dir + " already holds " + name +
          " — recover it with DaisyEngine::Open instead");
    }
  }
  const uint64_t seq = 1;
  DAISY_RETURN_IF_ERROR(WriteSnapshotLocked(SnapshotPath(dir, seq)));
  DAISY_ASSIGN_OR_RETURN(
      wal_, persist::WalWriter::Create(WalPath(dir, seq), env_));
  DAISY_RETURN_IF_ERROR(persist::SyncDirectory(dir, env_));
  persist_dir_ = dir;
  persist_seq_ = seq;
  if (options_.group_commit) {
    wal_queue_ = std::make_unique<persist::GroupCommitQueue>(wal_.get());
  }
  return Status::OK();
}

Status DaisyEngine::RotateGenerationLocked() {
  // Drain the group-commit queue before any snapshot I/O: an in-flight
  // leader runs outside mu_, and the Env contract requires serialized
  // calls. Holding mu_ exclusively guarantees no new enqueue can race the
  // drain. Flush failures don't block the rotation — pending records that
  // could not commit fail their (unacked) ops, while their in-memory
  // effects are captured by the snapshot about to be written.
  if (wal_queue_ != nullptr) (void)wal_queue_->Flush();
  const uint64_t next = persist_seq_ + 1;
  const std::string snap_path = SnapshotPath(persist_dir_, next);
  const std::string next_wal_path = WalPath(persist_dir_, next);
  // Order matters for crash safety: the new snapshot and its (empty) WAL
  // become durable before anything of generation N disappears, so a crash
  // at any point leaves at least one complete generation on disk. Open()
  // prefers the newest parseable snapshot.
  Status rotated = WriteSnapshotLocked(snap_path);
  std::unique_ptr<persist::WalWriter> next_wal;
  if (rotated.ok()) {
    Result<std::unique_ptr<persist::WalWriter>> created =
        persist::WalWriter::Create(next_wal_path, env_);
    if (created.ok()) {
      next_wal = std::move(created).value();
      rotated = persist::SyncDirectory(persist_dir_, env_);
    } else {
      rotated = created.status();
    }
  }
  if (!rotated.ok()) {
    // Best-effort: remove the partial next generation so the engine keeps
    // serving generation N cleanly. Leftovers are harmless — a complete
    // orphan snapshot N+1 already contains every wal-N effect (it was
    // written from the state that includes them), and a torn one is
    // impossible (WriteFileAtomic renames) — only `.tmp` staging files
    // can linger, and the orphan sweep collects those.
    (void)persist::RemoveFileIfExists(next_wal_path, env_);
    (void)persist::RemoveFileIfExists(snap_path, env_);
    (void)persist::SyncDirectory(persist_dir_, env_);
    return rotated;
  }
  // Commit point: generation `next` is fully durable. Serve from it
  // before touching the old generation — deleting generation N is
  // best-effort cleanup (an orphaned old generation is harmless; Open
  // prefers the newest parseable snapshot).
  wal_ = std::move(next_wal);
  // Re-arm group commit on the fresh log: the queue is idle (flushed
  // above, enqueues excluded by mu_), so swapping the writer and clearing
  // any poison is safe.
  if (wal_queue_ != nullptr) wal_queue_->Reset(wal_.get());
  const uint64_t old = persist_seq_;
  persist_seq_ = next;
  // Old-generation cleanup is best-effort: generation N+1 is already
  // durable, so a leftover N pair only wastes disk; recovery always picks
  // the highest complete generation.
  (void)persist::RemoveFileIfExists(WalPath(persist_dir_, old), env_);
  (void)persist::RemoveFileIfExists(SnapshotPath(persist_dir_, old), env_);
  (void)persist::SyncDirectory(persist_dir_, env_);
  SweepOrphanTmpFilesLocked();
  return Status::OK();
}

Status DaisyEngine::Checkpoint() {
  WriterLock lock(&*mu_);
  if (wal_ == nullptr) {
    return Status::Internal("Checkpoint() requires EnablePersistence/Open");
  }
  DAISY_RETURN_IF_ERROR(CheckWritableLocked());
  Timer timer;
  Status rotated = RotateGenerationLocked();
  // A checkpoint that cannot complete leaves generation N serving, but
  // the I/O layer just proved itself unreliable: degrade and let
  // TryRecover() probe it back to health.
  if (!rotated.ok()) return DegradeLocked(rotated);
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("daisy_persist_checkpoints_total",
                 "Completed checkpoint rotations")
      ->Increment();
  reg.GetHistogram("daisy_persist_checkpoint_duration_us",
                   /*first_bound=*/256, /*num_buckets=*/16,
                   "Checkpoint (snapshot + WAL rotation) wall time")
      ->Observe(static_cast<uint64_t>(timer.ElapsedMillis() * 1000.0));
  return Status::OK();
}

Status DaisyEngine::TryRecover() {
  WriterLock lock(&*mu_);
  if (health_ == EngineHealth::kHealthy) {
    return Status::InvalidArgument("engine is healthy — nothing to recover");
  }
  if (health_ == EngineHealth::kFailed) {
    return Status::Internal("engine failed (unrecoverable): " +
                            health_cause_.ToString());
  }
  const auto now = std::chrono::steady_clock::now();
  if (now < next_recover_at_) {
    const auto wait_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             next_recover_at_ - now)
                             .count();
    return Status::ResourceExhausted(
        "recovery attempt inside backoff window; retry in " +
        std::to_string(wait_ms) + " ms");
  }
  ++recover_attempts_;
  MetricsRegistry::Global()
      .GetCounter("daisy_persist_recover_attempts_total",
                  "TryRecover() attempts admitted past the backoff gate")
      ->Increment();
  SweepOrphanTmpFilesLocked();
  // Re-arm on a fresh generation: snapshotting the current in-memory
  // state also makes the operation whose durability failure degraded us
  // durable after all.
  Status rotated = RotateGenerationLocked();
  if (!rotated.ok()) {
    recover_backoff_ms_ =
        recover_backoff_ms_ == 0
            ? options_.recover_backoff_ms
            : std::min(recover_backoff_ms_ * 2, options_.recover_backoff_max_ms);
    next_recover_at_ = now + std::chrono::milliseconds(recover_backoff_ms_);
    return rotated;
  }
  TransitionLocked(EngineHealth::kHealthy, Status::OK());
  return Status::OK();
}

Status DaisyEngine::RestoreEngineState(const persist::EngineSnapshot& snap) {
  WriterLock lock(&*mu_);
  if (snap.rules.size() != rules_.size()) {
    return Status::InvalidArgument(
        "snapshot has state for " + std::to_string(snap.rules.size()) +
        " rules, engine prepared " + std::to_string(rules_.size()));
  }
  for (const persist::RuleSnapshot& rs : snap.rules) {
    auto it = rules_.find(rs.rule);
    if (it == rules_.end()) {
      return Status::InvalidArgument("snapshot names unknown rule '" +
                                     rs.rule + "'");
    }
    RuleState& state = it->second;
    if (rs.has_theta != (state.theta != nullptr)) {
      return Status::InvalidArgument("snapshot and engine disagree on the "
                                     "detector kind of rule '" +
                                     rs.rule + "'");
    }
    DAISY_RETURN_IF_ERROR(state.op->ImportPersistState(rs.op));
    state.cost.RestoreLedger(rs.cost);
    if (state.theta != nullptr) {
      DAISY_RETURN_IF_ERROR(state.theta->ImportState(rs.theta));
    }
  }
  for (const auto& [table, records] : snap.provenance) {
    if (!db_->HasTable(table)) {
      return Status::InvalidArgument("snapshot provenance names unknown "
                                     "table '" + table + "'");
    }
    provenance_[table].RestoreRecords(records);
  }
  epoch_ = snap.epoch;
  RefreshDerivedState();
  return Status::OK();
}

Result<std::unique_ptr<DaisyEngine>> DaisyEngine::Open(const std::string& dir,
                                                       Database* db,
                                                       DaisyOptions options,
                                                       persist::Env* env) {
  if (!db->TableNames().empty()) {
    return Status::InvalidArgument(
        "DaisyEngine::Open requires an empty Database");
  }
  persist::Env* e = env != nullptr ? env : persist::Env::Default();
  DAISY_ASSIGN_OR_RETURN(std::vector<std::string> names,
                         persist::ListDirectory(dir, e));
  // Sweep atomic-write staging files orphaned by a crash before their
  // rename; they are never part of any generation.
  bool swept = false;
  for (const std::string& name : names) {
    if (!IsTmpName(name)) continue;
    if (persist::RemoveFileIfExists(dir + "/" + name, e).ok()) swept = true;
  }
  // The sweep itself is best-effort; so is making it durable.
  if (swept) (void)persist::SyncDirectory(dir, e);
  std::vector<uint64_t> seqs;
  for (const std::string& name : names) {
    uint64_t seq = 0;
    if (ParseSnapshotSeq(name, &seq)) seqs.push_back(seq);
  }
  if (seqs.empty()) {
    return Status::NotFound("no daisy snapshot in " + dir);
  }
  std::sort(seqs.begin(), seqs.end());

  // Newest parseable snapshot wins; a corrupt newest generation (torn
  // Checkpoint, disk damage) falls back to its predecessor, whose WAL is
  // only deleted after the successor is fully durable.
  persist::EngineSnapshot snap;
  uint64_t seq = 0;
  Status last_error = Status::OK();
  bool loaded = false;
  for (size_t i = seqs.size(); i-- > 0 && !loaded;) {
    Result<persist::EngineSnapshot> parsed =
        persist::ReadSnapshot(SnapshotPath(dir, seqs[i]), e);
    if (parsed.ok()) {
      snap = std::move(parsed).value();
      seq = seqs[i];
      loaded = true;
    } else {
      last_error = parsed.status();
    }
  }
  if (!loaded) {
    return Status::IOError("no loadable snapshot in " + dir + ": " +
                           last_error.ToString());
  }

  for (Table& table : snap.tables) {
    DAISY_RETURN_IF_ERROR(db->AddTable(std::move(table)));
  }
  snap.tables.clear();
  ConstraintSet constraints;
  for (DenialConstraint& dc : snap.constraints) {
    DAISY_RETURN_IF_ERROR(constraints.Add(std::move(dc)));
  }
  snap.constraints.clear();

  // The semantics-affecting options travel with the state: replaying the
  // WAL under a different mode/threshold/pruning config would diverge
  // from the engine that wrote it. The caller's perf knobs (thread
  // counts, columnar ablation) are kept — results are deterministic
  // across those by contract.
  options.mode = snap.options.mode == 0 ? DaisyOptions::Mode::kIncremental
                                        : DaisyOptions::Mode::kAdaptive;
  options.accuracy_threshold = snap.options.accuracy_threshold;
  options.theta_partitions = snap.options.theta_partitions;
  options.use_statistics_pruning = snap.options.use_statistics_pruning;
  options.theta_pruning = snap.options.theta_pruning;
  options.optimizer = snap.options.optimizer;
  auto engine =
      std::make_unique<DaisyEngine>(db, std::move(constraints), options);
  engine->env_ = e;
  DAISY_RETURN_IF_ERROR(engine->Prepare());
  DAISY_RETURN_IF_ERROR(engine->RestoreEngineState(snap));

  // Replay the delta log through the regular machinery. A missing WAL is a
  // crash between a Checkpoint's snapshot rename and its WAL creation —
  // equivalent to an empty log.
  const std::string wal_path = WalPath(dir, seq);
  Result<persist::WalContents> wal = persist::ReadWal(wal_path, e);
  uint64_t valid_bytes = 0;
  bool have_wal_file = wal.ok();
  if (!have_wal_file && wal.status().code() != StatusCode::kNotFound) {
    return wal.status();
  }
  if (have_wal_file && !wal.value().header_valid) {
    // Crash inside the WAL creation of EnablePersistence/Checkpoint: the
    // log is empty; recreate it below with a fresh header.
    have_wal_file = false;
  }
  if (have_wal_file) {
    engine->wal_replay_ = true;
    uint64_t replayed = 0;
    for (const std::string& payload : wal.value().payloads) {
      DAISY_ASSIGN_OR_RETURN(persist::WalRecord record,
                             persist::DecodeWalRecord(payload));
      Status applied = Status::OK();
      switch (record.type) {
        case persist::kWalAppendRows:
          applied = engine->AppendRows(record.table, std::move(record.rows))
                        .status();
          break;
        case persist::kWalDeleteRows:
          applied = engine->DeleteRows(record.table, std::move(record.ids))
                        .status();
          break;
        case persist::kWalQuery:
          applied = engine->Query(record.stmt).status();
          break;
        case persist::kWalCleanAll:
          applied = engine->CleanAllRemaining();
          break;
        case persist::kWalImportProvenance: {
          ProvenanceStore store;
          store.RestoreRecords(std::move(record.provenance));
          applied = engine->ImportProvenance(record.table, store);
          break;
        }
        default:
          applied = Status::Internal("unreplayable WAL record type " +
                                     std::to_string(record.type));
      }
      if (!applied.ok()) {
        engine->wal_replay_ = false;
        return Status::Internal("WAL replay of " + wal_path +
                                " failed: " + applied.ToString());
      }
      ++replayed;
    }
    engine->wal_replay_ = false;
    valid_bytes = wal.value().valid_bytes;
    MetricsRegistry::Global()
        .GetCounter("daisy_persist_recovery_replayed_records_total",
                    "WAL records replayed by Open() recovery")
        ->Increment(replayed);
    if (replayed > 0) {
      LogInfo("persist", "WAL replay complete",
              {{"path", wal_path}, {"records", std::to_string(replayed)}});
    }
  }

  if (have_wal_file) {
    DAISY_ASSIGN_OR_RETURN(engine->wal_, persist::WalWriter::OpenForAppend(
                                             wal_path, valid_bytes, e));
  } else {
    DAISY_ASSIGN_OR_RETURN(engine->wal_,
                           persist::WalWriter::Create(wal_path, e));
    DAISY_RETURN_IF_ERROR(persist::SyncDirectory(dir, e));
  }
  engine->persist_dir_ = dir;
  engine->persist_seq_ = seq;
  if (engine->options_.group_commit) {
    engine->wal_queue_ =
        std::make_unique<persist::GroupCommitQueue>(engine->wal_.get());
  }
  return engine;
}

}  // namespace daisy
