#include "persist/group_commit.h"

namespace daisy {
namespace persist {

GroupCommitQueue::TicketPtr GroupCommitQueue::Enqueue(std::string payload) {
  MutexLock lk(&mu_);
  auto ticket = std::make_shared<Ticket>();
  if (!poison_.ok()) {
    ticket->result = poison_;
    ticket->done = true;
    return ticket;
  }
  pending_.emplace_back(std::move(payload), ticket);
  return ticket;
}

Status GroupCommitQueue::Wait(const TicketPtr& ticket) {
  MutexLock lk(&mu_);
  for (;;) {
    if (ticket->done) return ticket->result;
    if (!committing_ && !hold_ && !pending_.empty()) {
      // Become the leader: take the whole queue (our ticket is in it —
      // any earlier leader would have completed it) and commit outside
      // the lock so followers can keep enqueueing the next batch.
      committing_ = true;
      auto batch = std::move(pending_);
      pending_.clear();
      std::vector<std::string> payloads;
      payloads.reserve(batch.size());
      for (auto& entry : batch) payloads.push_back(std::move(entry.first));
      // Snapshot the writer under the lock; Reset() requires an idle
      // queue, so it cannot swap writer_ while committing_ is set.
      WalWriter* writer = writer_;
      lk.Unlock();
      const Status committed = writer->AppendBatch(payloads);
      lk.Relock();
      if (!committed.ok()) poison_ = committed;
      for (auto& entry : batch) {
        entry.second->result = committed;
        entry.second->done = true;
      }
      committing_ = false;
      cv_.NotifyAll();
      continue;  // our own ticket is done now
    }
    cv_.Wait(&mu_);
  }
}

Status GroupCommitQueue::Flush() {
  MutexLock lk(&mu_);
  while (committing_) cv_.Wait(&mu_);
  if (!pending_.empty()) {
    // No leader can start (we hold the mutex) and no enqueuer can race
    // (the caller holds the engine's exclusive lock), so committing
    // inline while holding the mutex is safe.
    auto batch = std::move(pending_);
    pending_.clear();
    Status committed = poison_;
    if (committed.ok()) {
      std::vector<std::string> payloads;
      payloads.reserve(batch.size());
      for (auto& entry : batch) payloads.push_back(std::move(entry.first));
      committed = writer_->AppendBatch(payloads);
      if (!committed.ok()) poison_ = committed;
    }
    for (auto& entry : batch) {
      entry.second->result = committed;
      entry.second->done = true;
    }
    cv_.NotifyAll();
  }
  return poison_;
}

void GroupCommitQueue::Reset(WalWriter* writer) {
  MutexLock lk(&mu_);
  writer_ = writer;
  poison_ = Status::OK();
}

WalCommitStats GroupCommitQueue::Stats() {
  MutexLock lk(&mu_);
  while (committing_) cv_.Wait(&mu_);
  return writer_ != nullptr ? writer_->stats() : WalCommitStats{};
}

void GroupCommitQueue::TestHoldCommits(bool hold) {
  MutexLock lk(&mu_);
  hold_ = hold;
  if (!hold_) cv_.NotifyAll();
}

size_t GroupCommitQueue::TestPendingDepth() {
  MutexLock lk(&mu_);
  return pending_.size();
}

}  // namespace persist
}  // namespace daisy
