#include "persist/group_commit.h"

namespace daisy {
namespace persist {

GroupCommitQueue::TicketPtr GroupCommitQueue::Enqueue(std::string payload) {
  std::lock_guard<std::mutex> lk(mu_);
  auto ticket = std::make_shared<Ticket>();
  if (!poison_.ok()) {
    ticket->result = poison_;
    ticket->done = true;
    return ticket;
  }
  pending_.emplace_back(std::move(payload), ticket);
  return ticket;
}

Status GroupCommitQueue::Wait(const TicketPtr& ticket) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (ticket->done) return ticket->result;
    if (!committing_ && !hold_ && !pending_.empty()) {
      // Become the leader: take the whole queue (our ticket is in it —
      // any earlier leader would have completed it) and commit outside
      // the lock so followers can keep enqueueing the next batch.
      committing_ = true;
      auto batch = std::move(pending_);
      pending_.clear();
      std::vector<std::string> payloads;
      payloads.reserve(batch.size());
      for (auto& entry : batch) payloads.push_back(std::move(entry.first));
      lk.unlock();
      const Status committed = writer_->AppendBatch(payloads);
      lk.lock();
      if (!committed.ok()) poison_ = committed;
      for (auto& entry : batch) {
        entry.second->result = committed;
        entry.second->done = true;
      }
      committing_ = false;
      cv_.notify_all();
      continue;  // our own ticket is done now
    }
    cv_.wait(lk);
  }
}

Status GroupCommitQueue::Flush() {
  std::unique_lock<std::mutex> lk(mu_);
  while (committing_) cv_.wait(lk);
  if (!pending_.empty()) {
    // No leader can start (we hold the mutex) and no enqueuer can race
    // (the caller holds the engine's exclusive lock), so committing
    // inline while holding the mutex is safe.
    auto batch = std::move(pending_);
    pending_.clear();
    Status committed = poison_;
    if (committed.ok()) {
      std::vector<std::string> payloads;
      payloads.reserve(batch.size());
      for (auto& entry : batch) payloads.push_back(std::move(entry.first));
      committed = writer_->AppendBatch(payloads);
      if (!committed.ok()) poison_ = committed;
    }
    for (auto& entry : batch) {
      entry.second->result = committed;
      entry.second->done = true;
    }
    cv_.notify_all();
  }
  return poison_;
}

void GroupCommitQueue::Reset(WalWriter* writer) {
  std::lock_guard<std::mutex> lk(mu_);
  writer_ = writer;
  poison_ = Status::OK();
}

WalCommitStats GroupCommitQueue::Stats() {
  std::unique_lock<std::mutex> lk(mu_);
  while (committing_) cv_.wait(lk);
  return writer_ != nullptr ? writer_->stats() : WalCommitStats{};
}

void GroupCommitQueue::TestHoldCommits(bool hold) {
  std::lock_guard<std::mutex> lk(mu_);
  hold_ = hold;
  if (!hold_) cv_.notify_all();
}

size_t GroupCommitQueue::TestPendingDepth() {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_.size();
}

}  // namespace persist
}  // namespace daisy
