#include "persist/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "persist/format.h"
#include "persist/io_util.h"

namespace daisy {
namespace persist {

namespace {

// ---------------------------------------------------------------- values --

// Exact-type dictionary key: Value::Equals unifies int 5 and double 5.0,
// which must stay distinct on disk (the reconstructed cell has to render
// and type-check exactly like the original). NaN doubles are keyed by bit
// pattern so they dictionary-encode instead of growing one entry per cell.
struct ExactKey {
  uint8_t tag;
  uint64_t bits;
  const std::string* str;  ///< string values only; borrowed from the cell
};

struct ExactKeyHash {
  size_t operator()(const ExactKey& k) const {
    size_t h = std::hash<uint64_t>()((uint64_t{k.tag} << 56) ^ k.bits);
    if (k.str != nullptr) h ^= std::hash<std::string>()(*k.str);
    return h;
  }
};

struct ExactKeyEq {
  bool operator()(const ExactKey& a, const ExactKey& b) const {
    if (a.tag != b.tag || a.bits != b.bits) return false;
    if (a.str == nullptr || b.str == nullptr) return a.str == b.str;
    return *a.str == *b.str;
  }
};

ExactKey MakeExactKey(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return {0, 0, nullptr};
    case ValueType::kInt:
      return {1, static_cast<uint64_t>(v.as_int()), nullptr};
    case ValueType::kDouble: {
      uint64_t bits;
      const double d = v.as_double_raw();
      std::memcpy(&bits, &d, sizeof(bits));
      return {2, bits, nullptr};
    }
    case ValueType::kString:
      return {3, 0, &v.as_string()};
  }
  return {0, 0, nullptr};
}

// ---------------------------------------------------------------- tables --

void EncodeTable(const Table& t, BinaryWriter* w) {
  w->WriteString(t.name());
  w->WriteU32(static_cast<uint32_t>(t.schema().num_columns()));
  for (const Column& c : t.schema().columns()) {
    w->WriteString(c.name);
    w->WriteU8(static_cast<uint8_t>(c.type));
  }
  const size_t rows = t.num_rows();
  w->WriteU64(rows);
  w->WriteU64(t.append_version());
  w->WriteU64(t.delta_generation());
  const std::vector<RowId>& dlog = t.deleted_rows_log();
  w->WriteU64(dlog.size());
  for (RowId r : dlog) w->WriteU64(r);

  // Columnar originals: per column a dictionary + one code per row.
  for (size_t c = 0; c < t.num_columns(); ++c) {
    std::unordered_map<ExactKey, uint32_t, ExactKeyHash, ExactKeyEq> index;
    std::vector<const Value*> dict;
    std::vector<uint32_t> codes;
    codes.reserve(rows);
    for (RowId r = 0; r < rows; ++r) {
      const Value& v = t.cell(r, c).original();
      auto [it, inserted] =
          index.emplace(MakeExactKey(v), static_cast<uint32_t>(dict.size()));
      if (inserted) dict.push_back(&v);
      codes.push_back(it->second);
    }
    w->WriteU32(static_cast<uint32_t>(dict.size()));
    for (const Value* v : dict) w->WriteValue(*v);
    for (uint32_t code : codes) w->WriteU32(code);
  }

  // Sparse probabilistic cells with their candidate sets.
  size_t prob_cells = 0;
  for (RowId r = 0; r < rows; ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      if (t.cell(r, c).is_probabilistic()) ++prob_cells;
    }
  }
  w->WriteU64(prob_cells);
  for (RowId r = 0; r < rows; ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      const Cell& cell = t.cell(r, c);
      if (!cell.is_probabilistic()) continue;
      w->WriteU64(r);
      w->WriteU32(static_cast<uint32_t>(c));
      w->WriteU32(static_cast<uint32_t>(cell.candidates().size()));
      for (const Candidate& cand : cell.candidates()) {
        w->WriteValue(cand.value);
        w->WriteDouble(cand.prob);
        w->WriteI32(cand.pair_id);
        w->WriteU8(static_cast<uint8_t>(cand.kind));
      }
    }
  }
}

Result<Table> DecodeTable(BinaryReader* r) {
  DAISY_ASSIGN_OR_RETURN(std::string name, r->ReadString());
  DAISY_ASSIGN_OR_RETURN(uint32_t ncols, r->ReadU32());
  std::vector<Column> cols;
  cols.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    Column col;
    DAISY_ASSIGN_OR_RETURN(col.name, r->ReadString());
    DAISY_ASSIGN_OR_RETURN(uint8_t type, r->ReadU8());
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::ParseError("snapshot: unknown column type " +
                                std::to_string(type));
    }
    col.type = static_cast<ValueType>(type);
    cols.push_back(std::move(col));
  }
  Table table(name, Schema(std::move(cols)));

  DAISY_ASSIGN_OR_RETURN(uint64_t rows, r->ReadU64());
  // Every row costs 4 bytes of dictionary codes per column downstream;
  // reject absurd counts before any allocation sized by them. Zero-column
  // tables cannot carry rows (nothing encodes them).
  if (rows > 0 &&
      (ncols == 0 || rows > r->remaining() / (4ull * ncols))) {
    return Status::ParseError("snapshot: row count " + std::to_string(rows) +
                              " exceeds the section size in " + name);
  }
  DAISY_ASSIGN_OR_RETURN(uint64_t append_version, r->ReadU64());
  DAISY_ASSIGN_OR_RETURN(uint64_t delta_generation, r->ReadU64());
  DAISY_ASSIGN_OR_RETURN(uint64_t ndeleted, r->ReadCount(8));
  std::vector<RowId> dlog;
  dlog.reserve(ndeleted);
  for (uint64_t i = 0; i < ndeleted; ++i) {
    DAISY_ASSIGN_OR_RETURN(uint64_t id, r->ReadU64());
    dlog.push_back(id);
  }

  std::vector<std::vector<uint32_t>> col_codes(ncols);
  std::vector<std::vector<Value>> col_dicts(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    DAISY_ASSIGN_OR_RETURN(uint32_t dict_size, r->ReadU32());
    if (dict_size > r->remaining()) {  // >= 1 byte per encoded value
      return Status::ParseError("snapshot: dictionary size " +
                                std::to_string(dict_size) +
                                " exceeds the section size in " + name);
    }
    col_dicts[c].reserve(dict_size);
    for (uint32_t i = 0; i < dict_size; ++i) {
      DAISY_ASSIGN_OR_RETURN(Value v, r->ReadValue());
      col_dicts[c].push_back(std::move(v));
    }
    col_codes[c].reserve(rows);
    for (uint64_t i = 0; i < rows; ++i) {
      DAISY_ASSIGN_OR_RETURN(uint32_t code, r->ReadU32());
      if (code >= dict_size) {
        return Status::ParseError("snapshot: dictionary code " +
                                  std::to_string(code) + " out of range in " +
                                  name);
      }
      col_codes[c].push_back(code);
    }
  }
  table.Reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    Row row;
    row.cells.reserve(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      row.cells.emplace_back(col_dicts[c][col_codes[c][i]]);
    }
    table.AppendRowUnchecked(std::move(row));
  }

  DAISY_ASSIGN_OR_RETURN(uint64_t prob_cells, r->ReadCount(16));
  for (uint64_t i = 0; i < prob_cells; ++i) {
    DAISY_ASSIGN_OR_RETURN(uint64_t row, r->ReadU64());
    DAISY_ASSIGN_OR_RETURN(uint32_t col, r->ReadU32());
    if (row >= rows || col >= ncols) {
      return Status::ParseError("snapshot: probabilistic cell (" +
                                std::to_string(row) + ", " +
                                std::to_string(col) + ") out of range in " +
                                name);
    }
    DAISY_ASSIGN_OR_RETURN(uint32_t ncands, r->ReadU32());
    std::vector<Candidate> cands;
    cands.reserve(ncands);
    for (uint32_t k = 0; k < ncands; ++k) {
      Candidate cand;
      DAISY_ASSIGN_OR_RETURN(cand.value, r->ReadValue());
      DAISY_ASSIGN_OR_RETURN(cand.prob, r->ReadDouble());
      DAISY_ASSIGN_OR_RETURN(cand.pair_id, r->ReadI32());
      DAISY_ASSIGN_OR_RETURN(uint8_t kind, r->ReadU8());
      if (kind > static_cast<uint8_t>(CandidateKind::kGreaterEq)) {
        return Status::ParseError("snapshot: unknown candidate kind " +
                                  std::to_string(kind));
      }
      cand.kind = static_cast<CandidateKind>(kind);
      cands.push_back(std::move(cand));
    }
    // AppendRowUnchecked gave us fresh rows; writing candidates through the
    // mutable path here is fine — the cache does not exist yet.
    table.mutable_cell(row, col).set_candidates(std::move(cands));
  }

  DAISY_RETURN_IF_ERROR(table.RestorePersistedState(
      std::move(dlog), append_version, delta_generation));
  return table;
}

// ----------------------------------------------------------- constraints --

void EncodeConstraint(const DenialConstraint& dc, BinaryWriter* w) {
  w->WriteString(dc.name());
  w->WriteString(dc.table());
  w->WriteI32(dc.num_tuples());
  w->WriteU32(static_cast<uint32_t>(dc.atoms().size()));
  for (const PredicateAtom& a : dc.atoms()) {
    w->WriteI32(a.left_tuple);
    w->WriteU64(a.left_column);
    w->WriteString(a.left_column_name);
    w->WriteU8(static_cast<uint8_t>(a.op));
    w->WriteU8(a.right_is_constant ? 1 : 0);
    w->WriteI32(a.right_tuple);
    w->WriteU64(a.right_column);
    w->WriteString(a.right_column_name);
    w->WriteValue(a.constant);
  }
}

Result<DenialConstraint> DecodeConstraint(BinaryReader* r) {
  DAISY_ASSIGN_OR_RETURN(std::string name, r->ReadString());
  DAISY_ASSIGN_OR_RETURN(std::string table, r->ReadString());
  DAISY_ASSIGN_OR_RETURN(int32_t num_tuples, r->ReadI32());
  DAISY_ASSIGN_OR_RETURN(uint32_t natoms, r->ReadU32());
  std::vector<PredicateAtom> atoms;
  atoms.reserve(natoms);
  for (uint32_t i = 0; i < natoms; ++i) {
    PredicateAtom a;
    DAISY_ASSIGN_OR_RETURN(a.left_tuple, r->ReadI32());
    DAISY_ASSIGN_OR_RETURN(uint64_t lcol, r->ReadU64());
    a.left_column = lcol;
    DAISY_ASSIGN_OR_RETURN(a.left_column_name, r->ReadString());
    DAISY_ASSIGN_OR_RETURN(uint8_t op, r->ReadU8());
    if (op > static_cast<uint8_t>(CompareOp::kGeq)) {
      return Status::ParseError("snapshot: unknown compare op " +
                                std::to_string(op));
    }
    a.op = static_cast<CompareOp>(op);
    DAISY_ASSIGN_OR_RETURN(uint8_t is_const, r->ReadU8());
    a.right_is_constant = is_const != 0;
    DAISY_ASSIGN_OR_RETURN(a.right_tuple, r->ReadI32());
    DAISY_ASSIGN_OR_RETURN(uint64_t rcol, r->ReadU64());
    a.right_column = rcol;
    DAISY_ASSIGN_OR_RETURN(a.right_column_name, r->ReadString());
    DAISY_ASSIGN_OR_RETURN(a.constant, r->ReadValue());
    atoms.push_back(std::move(a));
  }
  // The constructor re-derives the FD view and the involved-column list.
  return DenialConstraint(std::move(name), std::move(table), num_tuples,
                          std::move(atoms));
}

// ----------------------------------------------------------- rule states --

void EncodeBitmapBytes(const std::vector<uint8_t>& bits, BinaryWriter* w) {
  w->WriteU64(bits.size());
  std::string packed((bits.size() + 7) / 8, '\0');
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] != 0) packed[i / 8] |= static_cast<char>(1u << (i % 8));
  }
  w->WriteString(packed);
}

Result<std::vector<uint8_t>> DecodeBitmapBytes(BinaryReader* r) {
  DAISY_ASSIGN_OR_RETURN(uint64_t nbits, r->ReadU64());
  DAISY_ASSIGN_OR_RETURN(std::string packed, r->ReadString());
  if (packed.size() != (nbits + 7) / 8) {
    return Status::ParseError("snapshot: bitmap length mismatch");
  }
  std::vector<uint8_t> bits(nbits, 0);
  for (uint64_t i = 0; i < nbits; ++i) {
    bits[i] = (packed[i / 8] >> (i % 8)) & 1;
  }
  return bits;
}

void EncodeDelta(const TableDelta& d, BinaryWriter* w) {
  w->WriteU64(d.generation);
  w->WriteU64(d.engine_epoch);
  w->WriteU64(d.appended.size());
  for (RowId r : d.appended) w->WriteU64(r);
  w->WriteU64(d.deleted.size());
  for (RowId r : d.deleted) w->WriteU64(r);
}

Result<TableDelta> DecodeDelta(BinaryReader* r) {
  TableDelta d;
  DAISY_ASSIGN_OR_RETURN(d.generation, r->ReadU64());
  DAISY_ASSIGN_OR_RETURN(d.engine_epoch, r->ReadU64());
  DAISY_ASSIGN_OR_RETURN(uint64_t nappend, r->ReadCount(8));
  d.appended.reserve(nappend);
  for (uint64_t i = 0; i < nappend; ++i) {
    DAISY_ASSIGN_OR_RETURN(uint64_t id, r->ReadU64());
    d.appended.push_back(id);
  }
  DAISY_ASSIGN_OR_RETURN(uint64_t ndel, r->ReadCount(8));
  d.deleted.reserve(ndel);
  for (uint64_t i = 0; i < ndel; ++i) {
    DAISY_ASSIGN_OR_RETURN(uint64_t id, r->ReadU64());
    d.deleted.push_back(id);
  }
  return d;
}

void EncodeRuleSnapshot(const RuleSnapshot& rs, BinaryWriter* w) {
  w->WriteString(rs.rule);
  EncodeBitmapBytes(rs.op.checked, w);
  w->WriteU64(rs.op.pending_rows.size());
  for (RowId r : rs.op.pending_rows) w->WriteU64(r);
  w->WriteU32(static_cast<uint32_t>(rs.op.pending_deltas.size()));
  for (const TableDelta& d : rs.op.pending_deltas) EncodeDelta(d, w);
  w->WriteDouble(rs.cost.cumulative);
  w->WriteU64(rs.cost.queries);
  w->WriteU64(rs.cost.sum_q);
  w->WriteU64(rs.cost.sum_errors);
  w->WriteU8(rs.has_theta ? 1 : 0);
  if (rs.has_theta) {
    EncodeBitmapBytes(rs.theta.checked, w);
    w->WriteU64(rs.theta.integrated_rows);
    w->WriteU64(rs.theta.deleted_log_pos);
    w->WriteU64(rs.theta.retractions);
    w->WriteU64(rs.theta.maintained.size());
    for (const ViolationPair& p : rs.theta.maintained) {
      w->WriteU64(p.t1);
      w->WriteU64(p.t2);
    }
  }
}

Result<RuleSnapshot> DecodeRuleSnapshot(BinaryReader* r) {
  RuleSnapshot rs;
  DAISY_ASSIGN_OR_RETURN(rs.rule, r->ReadString());
  DAISY_ASSIGN_OR_RETURN(rs.op.checked, DecodeBitmapBytes(r));
  DAISY_ASSIGN_OR_RETURN(uint64_t npending, r->ReadCount(8));
  rs.op.pending_rows.reserve(npending);
  for (uint64_t i = 0; i < npending; ++i) {
    DAISY_ASSIGN_OR_RETURN(uint64_t id, r->ReadU64());
    rs.op.pending_rows.push_back(id);
  }
  DAISY_ASSIGN_OR_RETURN(uint32_t ndeltas, r->ReadU32());
  rs.op.pending_deltas.reserve(ndeltas);
  for (uint32_t i = 0; i < ndeltas; ++i) {
    DAISY_ASSIGN_OR_RETURN(TableDelta d, DecodeDelta(r));
    rs.op.pending_deltas.push_back(std::move(d));
  }
  DAISY_ASSIGN_OR_RETURN(rs.cost.cumulative, r->ReadDouble());
  DAISY_ASSIGN_OR_RETURN(rs.cost.queries, r->ReadU64());
  DAISY_ASSIGN_OR_RETURN(rs.cost.sum_q, r->ReadU64());
  DAISY_ASSIGN_OR_RETURN(rs.cost.sum_errors, r->ReadU64());
  DAISY_ASSIGN_OR_RETURN(uint8_t has_theta, r->ReadU8());
  rs.has_theta = has_theta != 0;
  if (rs.has_theta) {
    DAISY_ASSIGN_OR_RETURN(rs.theta.checked, DecodeBitmapBytes(r));
    DAISY_ASSIGN_OR_RETURN(rs.theta.integrated_rows, r->ReadU64());
    DAISY_ASSIGN_OR_RETURN(rs.theta.deleted_log_pos, r->ReadU64());
    DAISY_ASSIGN_OR_RETURN(rs.theta.retractions, r->ReadU64());
    DAISY_ASSIGN_OR_RETURN(uint64_t npairs, r->ReadCount(16));
    rs.theta.maintained.reserve(npairs);
    for (uint64_t i = 0; i < npairs; ++i) {
      ViolationPair p;
      DAISY_ASSIGN_OR_RETURN(p.t1, r->ReadU64());
      DAISY_ASSIGN_OR_RETURN(p.t2, r->ReadU64());
      rs.theta.maintained.push_back(p);
    }
  }
  return rs;
}

// ------------------------------------------------------------- sections ---

void AppendSection(uint32_t id, const std::string& payload, std::string* out) {
  BinaryWriter frame;
  frame.WriteU32(id);
  frame.WriteU64(payload.size());
  out->append(frame.buffer());
  out->append(payload);
  BinaryWriter crc;
  crc.WriteU32(Crc32(payload.data(), payload.size()));
  out->append(crc.buffer());
}

}  // namespace

void EncodeProvenanceRecords(
    const std::map<ProvenanceStore::CellKey, std::vector<RepairRecord>>& recs,
    BinaryWriter* w) {
  w->WriteU64(recs.size());
  for (const auto& [key, records] : recs) {
    w->WriteU64(key.first);
    w->WriteU32(static_cast<uint32_t>(key.second));
    w->WriteU32(static_cast<uint32_t>(records.size()));
    for (const RepairRecord& rec : records) {
      w->WriteString(rec.rule);
      w->WriteI32(rec.pair_tag);
      w->WriteU32(static_cast<uint32_t>(rec.sources.size()));
      for (const CandidateSource& s : rec.sources) {
        w->WriteValue(s.value);
        w->WriteDouble(s.count);
        w->WriteU8(static_cast<uint8_t>(s.kind));
      }
      w->WriteU64(rec.conflicting_rows.size());
      for (RowId r : rec.conflicting_rows) w->WriteU64(r);
    }
  }
}

Result<std::map<ProvenanceStore::CellKey, std::vector<RepairRecord>>>
DecodeProvenanceRecords(BinaryReader* r) {
  std::map<ProvenanceStore::CellKey, std::vector<RepairRecord>> out;
  DAISY_ASSIGN_OR_RETURN(uint64_t ncells, r->ReadCount(16));
  for (uint64_t i = 0; i < ncells; ++i) {
    DAISY_ASSIGN_OR_RETURN(uint64_t row, r->ReadU64());
    DAISY_ASSIGN_OR_RETURN(uint32_t col, r->ReadU32());
    DAISY_ASSIGN_OR_RETURN(uint32_t nrecs, r->ReadU32());
    std::vector<RepairRecord> records;
    records.reserve(nrecs);
    for (uint32_t k = 0; k < nrecs; ++k) {
      RepairRecord rec;
      DAISY_ASSIGN_OR_RETURN(rec.rule, r->ReadString());
      DAISY_ASSIGN_OR_RETURN(rec.pair_tag, r->ReadI32());
      DAISY_ASSIGN_OR_RETURN(uint32_t nsources, r->ReadU32());
      rec.sources.reserve(nsources);
      for (uint32_t s = 0; s < nsources; ++s) {
        CandidateSource src;
        DAISY_ASSIGN_OR_RETURN(src.value, r->ReadValue());
        DAISY_ASSIGN_OR_RETURN(src.count, r->ReadDouble());
        DAISY_ASSIGN_OR_RETURN(uint8_t kind, r->ReadU8());
        if (kind > static_cast<uint8_t>(CandidateKind::kGreaterEq)) {
          return Status::ParseError("snapshot: unknown source kind " +
                                    std::to_string(kind));
        }
        src.kind = static_cast<CandidateKind>(kind);
        rec.sources.push_back(std::move(src));
      }
      DAISY_ASSIGN_OR_RETURN(uint64_t nconf, r->ReadCount(8));
      rec.conflicting_rows.reserve(nconf);
      for (uint64_t s = 0; s < nconf; ++s) {
        DAISY_ASSIGN_OR_RETURN(uint64_t id, r->ReadU64());
        rec.conflicting_rows.push_back(id);
      }
      records.push_back(std::move(rec));
    }
    out.emplace(ProvenanceStore::CellKey{row, col}, std::move(records));
  }
  return out;
}

Status WriteSnapshot(const std::string& path,
                     const EngineSnapshotView& view, Env* env) {
  std::string bytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  {
    BinaryWriter w;
    w.WriteU32(kSnapshotVersion);
    bytes.append(w.buffer());
  }
  {
    BinaryWriter w;
    w.WriteU64(view.epoch);
    w.WriteU32(static_cast<uint32_t>(view.tables.size()));
    w.WriteU32(static_cast<uint32_t>(view.rules.size()));
    w.WriteU8(view.options.mode);
    w.WriteDouble(view.options.accuracy_threshold);
    w.WriteU64(view.options.theta_partitions);
    w.WriteU8(view.options.use_statistics_pruning ? 1 : 0);
    w.WriteU8(view.options.theta_pruning ? 1 : 0);
    w.WriteU8(view.options.optimizer ? 1 : 0);  // v2
    AppendSection(kSectionMeta, w.buffer(), &bytes);
  }
  {
    BinaryWriter w;
    w.WriteU32(static_cast<uint32_t>(view.tables.size()));
    for (const Table* t : view.tables) EncodeTable(*t, &w);
    AppendSection(kSectionTables, w.buffer(), &bytes);
  }
  {
    BinaryWriter w;
    const size_t n = view.constraints == nullptr ? 0 : view.constraints->size();
    w.WriteU32(static_cast<uint32_t>(n));
    for (size_t i = 0; i < n; ++i) {
      EncodeConstraint(view.constraints->at(i), &w);
    }
    AppendSection(kSectionConstraints, w.buffer(), &bytes);
  }
  {
    BinaryWriter w;
    w.WriteU32(static_cast<uint32_t>(view.rules.size()));
    for (const RuleSnapshot& rs : view.rules) EncodeRuleSnapshot(rs, &w);
    AppendSection(kSectionRuleStates, w.buffer(), &bytes);
  }
  {
    BinaryWriter w;
    const size_t n = view.provenance == nullptr ? 0 : view.provenance->size();
    w.WriteU32(static_cast<uint32_t>(n));
    if (view.provenance != nullptr) {
      for (const auto& [table, store] : *view.provenance) {
        w.WriteString(table);
        EncodeProvenanceRecords(store.records(), &w);
      }
    }
    AppendSection(kSectionProvenance, w.buffer(), &bytes);
  }
  AppendSection(kSectionEnd, std::string(), &bytes);
  return WriteFileAtomic(path, bytes, env);
}

Result<EngineSnapshot> ReadSnapshot(const std::string& path, Env* env) {
  DAISY_ASSIGN_OR_RETURN(std::string bytes, ReadFileFully(path, env));
  if (bytes.size() < sizeof(kSnapshotMagic) + 4 ||
      std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::ParseError("not a daisy snapshot: " + path);
  }
  uint32_t version = 0;
  {
    BinaryReader version_reader(bytes.data() + sizeof(kSnapshotMagic), 4);
    DAISY_ASSIGN_OR_RETURN(version, version_reader.ReadU32());
    if (version < kMinSnapshotVersion || version > kSnapshotVersion) {
      return Status::ParseError(
          "snapshot " + path + " has format version " +
          std::to_string(version) + ", supported range [" +
          std::to_string(kMinSnapshotVersion) + ", " +
          std::to_string(kSnapshotVersion) + "]");
    }
  }

  EngineSnapshot snap;
  bool saw_end = false;
  size_t off = sizeof(kSnapshotMagic) + 4;
  while (!saw_end) {
    BinaryReader frame(bytes.data() + off, bytes.size() - off);
    DAISY_ASSIGN_OR_RETURN(uint32_t id, frame.ReadU32());
    DAISY_ASSIGN_OR_RETURN(uint64_t len, frame.ReadU64());
    if (frame.remaining() < len || frame.remaining() - len < 4) {
      return Status::ParseError("snapshot " + path + ": section " +
                                std::to_string(id) + " truncated");
    }
    const char* payload = bytes.data() + off + 12;
    BinaryReader section(payload, len);
    BinaryReader crc_reader(payload + len, 4);
    DAISY_ASSIGN_OR_RETURN(uint32_t crc, crc_reader.ReadU32());
    if (crc != Crc32(payload, len)) {
      return Status::ParseError("snapshot " + path + ": section " +
                                std::to_string(id) + " CRC mismatch");
    }
    off += 12 + len + 4;

    switch (id) {
      case kSectionEnd:
        saw_end = true;
        break;
      case kSectionMeta: {
        DAISY_ASSIGN_OR_RETURN(snap.epoch, section.ReadU64());
        DAISY_RETURN_IF_ERROR(section.ReadU32().status());  // table count
        DAISY_RETURN_IF_ERROR(section.ReadU32().status());  // rule count
        DAISY_ASSIGN_OR_RETURN(snap.options.mode, section.ReadU8());
        if (snap.options.mode > 1) {
          return Status::ParseError("snapshot: unknown engine mode " +
                                    std::to_string(snap.options.mode));
        }
        DAISY_ASSIGN_OR_RETURN(snap.options.accuracy_threshold,
                               section.ReadDouble());
        DAISY_ASSIGN_OR_RETURN(snap.options.theta_partitions,
                               section.ReadU64());
        DAISY_ASSIGN_OR_RETURN(uint8_t pruning, section.ReadU8());
        snap.options.use_statistics_pruning = pruning != 0;
        DAISY_ASSIGN_OR_RETURN(uint8_t theta_pruning, section.ReadU8());
        snap.options.theta_pruning = theta_pruning != 0;
        if (version >= 2) {
          DAISY_ASSIGN_OR_RETURN(uint8_t optimizer, section.ReadU8());
          snap.options.optimizer = optimizer != 0;
        }
        break;
      }
      case kSectionTables: {
        DAISY_ASSIGN_OR_RETURN(uint32_t n, section.ReadU32());
        snap.tables.reserve(n);
        for (uint32_t i = 0; i < n; ++i) {
          DAISY_ASSIGN_OR_RETURN(Table t, DecodeTable(&section));
          snap.tables.push_back(std::move(t));
        }
        break;
      }
      case kSectionConstraints: {
        DAISY_ASSIGN_OR_RETURN(uint32_t n, section.ReadU32());
        snap.constraints.reserve(n);
        for (uint32_t i = 0; i < n; ++i) {
          DAISY_ASSIGN_OR_RETURN(DenialConstraint dc, DecodeConstraint(&section));
          snap.constraints.push_back(std::move(dc));
        }
        break;
      }
      case kSectionRuleStates: {
        DAISY_ASSIGN_OR_RETURN(uint32_t n, section.ReadU32());
        snap.rules.reserve(n);
        for (uint32_t i = 0; i < n; ++i) {
          DAISY_ASSIGN_OR_RETURN(RuleSnapshot rs, DecodeRuleSnapshot(&section));
          snap.rules.push_back(std::move(rs));
        }
        break;
      }
      case kSectionProvenance: {
        DAISY_ASSIGN_OR_RETURN(uint32_t n, section.ReadU32());
        for (uint32_t i = 0; i < n; ++i) {
          DAISY_ASSIGN_OR_RETURN(std::string table, section.ReadString());
          DAISY_ASSIGN_OR_RETURN(auto recs, DecodeProvenanceRecords(&section));
          snap.provenance.emplace(std::move(table), std::move(recs));
        }
        break;
      }
      default:
        // Unknown section from a newer minor writer: the CRC was valid, so
        // it is safe to skip — forward compatibility within a version.
        break;
    }
  }
  return snap;
}

}  // namespace persist
}  // namespace daisy
