#include "persist/io_util.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace daisy {
namespace persist {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status WriteAllAndSync(int fd, const std::string& bytes,
                       const std::string& path) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("write", path));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) return Status::IOError(Errno("fsync", path));
  return Status::OK();
}

}  // namespace

Result<std::string> ReadFileFully(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IOError(Errno("open", path));
  }
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = Status::IOError(Errno("read", path));
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return bytes;
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError(Errno("open", tmp));
  Status st = WriteAllAndSync(fd, bytes, tmp);
  if (::close(fd) != 0 && st.ok()) st = Status::IOError(Errno("close", tmp));
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rs = Status::IOError(Errno("rename", tmp + " -> " + path));
    ::unlink(tmp.c_str());
    return rs;
  }
  return SyncDirectory(ParentDir(path));
}

Status EnsureDirectory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::IOError(Errno("mkdir", dir));
}

Result<std::vector<std::string>> ListDirectory(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::IOError(Errno("opendir", dir));
  std::vector<std::string> names;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) return Status::OK();
  return Status::IOError(Errno("unlink", path));
}

Status TruncateFile(const std::string& path, uint64_t size) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return Status::IOError(Errno("open", path));
  Status st;
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    st = Status::IOError(Errno("ftruncate", path));
  } else if (::fsync(fd) != 0) {
    st = Status::IOError(Errno("fsync", path));
  }
  ::close(fd);
  return st;
}

Status SyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IOError(Errno("open dir", dir));
  Status st;
  if (::fsync(fd) != 0) st = Status::IOError(Errno("fsync dir", dir));
  ::close(fd);
  return st;
}

}  // namespace persist
}  // namespace daisy
