#include "persist/io_util.h"

namespace daisy {
namespace persist {

namespace {

Env* OrDefault(Env* env) { return env != nullptr ? env : Env::Default(); }

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Result<std::string> ReadFileFully(const std::string& path, Env* env) {
  return OrDefault(env)->ReadFile(path);
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes,
                       Env* env) {
  env = OrDefault(env);
  const std::string tmp = path + ".tmp";
  Status st;
  {
    Result<std::unique_ptr<WritableFile>> opened =
        env->NewWritableFile(tmp, /*truncate=*/true);
    if (!opened.ok()) return opened.status();
    WritableFile* f = opened.value().get();
    st = f->Append(bytes);
    if (st.ok()) st = f->Sync();
    const Status closed = f->Close();
    if (st.ok()) st = closed;
  }
  if (!st.ok()) {
    // Cleanup on the failure path: the write error is the one to report;
    // a leftover .tmp is swept by the orphan sweep on the next open.
    (void)env->RemoveFile(tmp);
    return st;
  }
  st = env->RenameFile(tmp, path);
  if (!st.ok()) {
    // Same: report the rename failure, not the cleanup's.
    (void)env->RemoveFile(tmp);
    return st;
  }
  return env->SyncDir(ParentDir(path));
}

Status EnsureDirectory(const std::string& dir, Env* env) {
  return OrDefault(env)->CreateDir(dir);
}

Result<std::vector<std::string>> ListDirectory(const std::string& dir,
                                               Env* env) {
  return OrDefault(env)->ListDir(dir);
}

Status RemoveFileIfExists(const std::string& path, Env* env) {
  return OrDefault(env)->RemoveFile(path);
}

Status TruncateFile(const std::string& path, uint64_t size, Env* env) {
  return OrDefault(env)->TruncateFile(path, size);
}

Status SyncDirectory(const std::string& dir, Env* env) {
  return OrDefault(env)->SyncDir(dir);
}

}  // namespace persist
}  // namespace daisy
