// The write-ahead delta log: every durable engine mutation between
// snapshots, one fsync'd record per operation (framing in
// persist/format.h).
//
// Records are *logical*: an append/delete batch carries the rows/ids, a
// writer query carries its statement, CleanAllRemaining and provenance
// imports carry markers/payloads. Recovery replays them through the
// engine's own ingest/query machinery in epoch order — by the engine's
// serial-equivalence contract (QueryReport::epoch) the replay reproduces
// repairs, coverage, counters, and provenance bit for bit, while the
// snapshot underneath keeps the replay cost proportional to the log, not
// the dataset.
//
// Torn-tail rule: a crash can leave at most one incomplete record at the
// end of the file. ReadWal stops at the first short or CRC-corrupt frame
// and reports the byte offset of the valid prefix; the recovery path
// truncates the tail away before appending new records. A record is never
// half-applied.

#ifndef DAISY_PERSIST_WAL_H_
#define DAISY_PERSIST_WAL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "persist/env.h"
#include "query/ast.h"
#include "repair/provenance.h"
#include "storage/table.h"

namespace daisy {
namespace persist {

/// One decoded WAL record (tagged union over the operation kinds; the
/// fields beyond `type` are meaningful per kind — see persist/format.h).
struct WalRecord {
  uint8_t type = 0;
  std::string table;                     ///< append / delete / import
  std::vector<std::vector<Value>> rows;  ///< kWalAppendRows
  std::vector<RowId> ids;                ///< kWalDeleteRows
  SelectStmt stmt;                       ///< kWalQuery
  std::map<ProvenanceStore::CellKey, std::vector<RepairRecord>>
      provenance;                        ///< kWalImportProvenance
};

// Record encoders, one per operation kind (granular so the engine can
// encode from borrowed state — SelectStmt's expression tree is move-only).
std::string EncodeWalAppendRows(const std::string& table,
                                const std::vector<std::vector<Value>>& rows);
std::string EncodeWalDeleteRows(const std::string& table,
                                const std::vector<RowId>& ids);
std::string EncodeWalQuery(const SelectStmt& stmt);
std::string EncodeWalCleanAll();
std::string EncodeWalImportProvenance(
    const std::string& table,
    const std::map<ProvenanceStore::CellKey, std::vector<RepairRecord>>&
        records);

Result<WalRecord> DecodeWalRecord(const std::string& payload);

/// Durability counters for one WalWriter's lifetime. With group commit
/// (persist/group_commit.h) records > syncs: each batched flush pays one
/// write + one fsync for every record it carries. `max_batch_records`
/// exposes the largest batch — the bench asserts it exceeds 1 under
/// concurrent writers.
struct WalCommitStats {
  uint64_t records = 0;  ///< framed records appended
  uint64_t batches = 0;  ///< Append/AppendBatch calls that reached the file
  uint64_t syncs = 0;    ///< fsyncs issued
  uint64_t max_batch_records = 0;
};

/// Append-side handle over one WAL file. Every Append is a single write
/// of the framed record followed by fsync — when it returns OK the record
/// survives a crash in full. AppendBatch amortizes: all frames in one
/// write, one fsync for the lot. All file operations go through the given
/// Env (persist/env.h; null = Env::Default()).
///
/// Not thread-safe — callers serialize (the engine either holds its writer
/// lock or funnels through the group-commit queue's single leader).
class WalWriter {
 public:
  /// Creates (or truncates) the file and writes + fsyncs the magic header.
  static Result<std::unique_ptr<WalWriter>> Create(const std::string& path,
                                                   Env* env = nullptr);

  /// Opens an existing WAL whose valid prefix is `valid_bytes` long
  /// (from ReadWal), truncating any torn tail first.
  static Result<std::unique_ptr<WalWriter>> OpenForAppend(
      const std::string& path, uint64_t valid_bytes, Env* env = nullptr);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  Status Append(const std::string& payload);

  /// Appends every payload as its own framed record in one write() and
  /// issues a single Sync() for the whole batch. On OK, *all* records are
  /// durable; on failure none may be treated as durable (the file may hold
  /// a torn multi-record tail that ReadWal's prefix rule discards frame by
  /// frame). Equivalent to Append for a batch of one — same Env call
  /// sequence, so fault-schedule indices line up across both paths.
  Status AppendBatch(const std::vector<std::string>& payloads);

  const std::string& path() const { return path_; }

  const WalCommitStats& stats() const { return stats_; }

 private:
  WalWriter(std::string path, std::unique_ptr<WritableFile> file)
      : path_(std::move(path)), file_(std::move(file)) {}

  std::string path_;
  std::unique_ptr<WritableFile> file_;
  WalCommitStats stats_;
};

/// The decoded contents of one WAL file.
struct WalContents {
  std::vector<std::string> payloads;
  /// File offset of each record's frame, parallel to `payloads`, plus one
  /// final entry = the end of the valid prefix. The crash-injection tests
  /// cut the file at and between these boundaries.
  std::vector<uint64_t> record_offsets;
  uint64_t valid_bytes = 0;  ///< magic + every complete record
  bool torn_tail = false;    ///< trailing bytes were dropped
  /// False when the file is shorter than the magic header — a crash inside
  /// WalWriter::Create. The log is empty and must be recreated (not
  /// appended to) before use.
  bool header_valid = true;
};

/// Parses the log, applying the torn-tail rule. Fails only on a missing
/// file or a full-length header with the wrong magic (a foreign file) — a
/// mangled record region is reported as a (possibly empty) valid prefix
/// with torn_tail set, and a header torn by a crash mid-create comes back
/// as an empty log with header_valid=false.
Result<WalContents> ReadWal(const std::string& path, Env* env = nullptr);

}  // namespace persist
}  // namespace daisy

#endif  // DAISY_PERSIST_WAL_H_
