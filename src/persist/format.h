// On-disk format constants of the persistence layer.
//
// A persistence directory holds one snapshot plus one write-ahead log per
// generation, named by a six-digit sequence number:
//
//   snapshot-000042.dsnap   full engine state as of some epoch
//   wal-000042.dwal         every durable operation committed since
//
// Checkpoint() writes snapshot-(N+1) (tmp file + rename, both fsync'd),
// starts wal-(N+1), and only then deletes generation N — so at every
// instant at least one complete (snapshot, wal) pair exists on disk.
//
// Snapshot layout:
//
//   [8]  magic "DSYSNAP\x01"
//   [4]  format version (u32 LE)
//   then a sequence of sections, each:
//   [4]  section id (u32 LE)       [8] payload length (u64 LE)
//   [.]  payload                   [4] CRC-32 of the payload
//   terminated by section id kSectionEnd with an empty payload.
//
// Every payload is encoded with common/binary_io.h (bounds-checked on
// read). A reader rejects the file on bad magic, unknown version, short
// section, or CRC mismatch — Open() then falls back to the previous
// generation if one survives.
//
// WAL layout:
//
//   [8]  magic "DSYWAL\x01\x00"
//   then a sequence of records, each:
//   [4]  payload length (u32 LE)   [4] CRC-32 of the payload
//   [.]  payload (first byte = record type)
//
// Records are appended with a single write() and fsync'd before the
// mutating call returns, so a record is either durable in full or absent.
// On recovery the reader stops at the first incomplete or CRC-corrupt
// record (a torn tail from a crash mid-append), truncates it away, and
// never applies half a record.

#ifndef DAISY_PERSIST_FORMAT_H_
#define DAISY_PERSIST_FORMAT_H_

#include <cstdint>

namespace daisy {
namespace persist {

inline constexpr char kSnapshotMagic[8] = {'D', 'S', 'Y', 'S',
                                           'N', 'A', 'P', '\x01'};
inline constexpr char kWalMagic[8] = {'D', 'S', 'Y', 'W',
                                      'A', 'L', '\x01', '\x00'};

/// Bumped on any incompatible change to the section payload encodings. A
/// checked-in v1 fixture pins backward compatibility in the test suite.
/// v2 appends the optimizer flag to the meta section; readers accept every
/// version in [kMinSnapshotVersion, kSnapshotVersion] and default fields a
/// version predates (v1 snapshots load with optimizer = true, the engine
/// default).
inline constexpr uint32_t kSnapshotVersion = 2;
inline constexpr uint32_t kMinSnapshotVersion = 1;

// Section ids. New sections get fresh ids; ids are never reused.
inline constexpr uint32_t kSectionEnd = 0;
inline constexpr uint32_t kSectionMeta = 1;        ///< epoch, counts
inline constexpr uint32_t kSectionTables = 2;      ///< columnar table data
inline constexpr uint32_t kSectionConstraints = 3; ///< bound rule definitions
inline constexpr uint32_t kSectionRuleStates = 4;  ///< per-rule cleaning state
inline constexpr uint32_t kSectionProvenance = 5;  ///< per-table repair records

// WAL record types (first payload byte).
inline constexpr uint8_t kWalAppendRows = 1;
inline constexpr uint8_t kWalDeleteRows = 2;
inline constexpr uint8_t kWalQuery = 3;        ///< a writer query (repairs)
inline constexpr uint8_t kWalCleanAll = 4;     ///< CleanAllRemaining marker
inline constexpr uint8_t kWalImportProvenance = 5;

}  // namespace persist
}  // namespace daisy

#endif  // DAISY_PERSIST_FORMAT_H_
