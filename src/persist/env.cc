#include "persist/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace daisy {
namespace persist {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const char* data, size_t size) override {
    size_t off = 0;
    while (off < size) {
      const ssize_t n = ::write(fd_, data + off, size - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(Errno("write", path_));
      }
      off += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Status::IOError(Errno("fsync", path_));
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return Status::IOError(Errno("close", path_));
    return Status::OK();
  }

  const std::string& path() const override { return path_; }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    const int flags =
        truncate ? (O_WRONLY | O_CREAT | O_TRUNC) : (O_WRONLY | O_APPEND);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return Status::IOError(Errno("open", path));
    return std::unique_ptr<WritableFile>(new PosixWritableFile(path, fd));
  }

  Result<std::string> ReadFile(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return Status::IOError(Errno("open", path));
    }
    std::string bytes;
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        const Status st = Status::IOError(Errno("read", path));
        ::close(fd);
        return st;
      }
      if (n == 0) break;
      bytes.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return bytes;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError(Errno("rename", from + " -> " + to));
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) return Status::IOError(Errno("open", path));
    Status st;
    if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
      st = Status::IOError(Errno("ftruncate", path));
    } else if (::fsync(fd) != 0) {
      st = Status::IOError(Errno("fsync", path));
    }
    ::close(fd);
    return st;
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) == 0 || errno == ENOENT) return Status::OK();
    return Status::IOError(Errno("unlink", path));
  }

  Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
      return Status::OK();
    }
    return Status::IOError(Errno("mkdir", dir));
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return Status::IOError(Errno("opendir", dir));
    std::vector<std::string> names;
    while (struct dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") names.push_back(name);
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Status::IOError(Errno("open dir", dir));
    Status st;
    if (::fsync(fd) != 0) st = Status::IOError(Errno("fsync dir", dir));
    ::close(fd);
    return st;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace persist
}  // namespace daisy
