// Denial constraints: ∀t1..tk ¬(p1 ∧ ... ∧ pm).
//
// A pair (or single tuple) *violates* the constraint when every atom is
// satisfied. Functional dependencies are the special case
// ¬(t1.X1==t2.X1 ∧ ... ∧ t1.Xn==t2.Xn ∧ t1.Y != t2.Y); Daisy treats them
// specially throughout (group-by detection, Algorithm-1 relaxation), so the
// class exposes an FD "view" when the atom structure matches.

#ifndef DAISY_CONSTRAINTS_DENIAL_CONSTRAINT_H_
#define DAISY_CONSTRAINTS_DENIAL_CONSTRAINT_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "constraints/predicate.h"
#include "storage/table.h"

namespace daisy {

/// Functional-dependency view of a two-tuple equality DC: lhs -> rhs.
struct FdView {
  std::vector<size_t> lhs;  ///< column indices of X
  size_t rhs = 0;           ///< column index of Y
  std::vector<std::string> lhs_names;
  std::string rhs_name;
};

/// A bound denial constraint over a single table.
class DenialConstraint {
 public:
  DenialConstraint() = default;
  DenialConstraint(std::string name, std::string table, int num_tuples,
                   std::vector<PredicateAtom> atoms);

  const std::string& name() const { return name_; }
  const std::string& table() const { return table_; }
  /// 1 for single-tuple constraints, 2 for pairwise ones.
  int num_tuples() const { return num_tuples_; }
  const std::vector<PredicateAtom>& atoms() const { return atoms_; }

  /// True if this DC is a functional dependency (see file comment).
  bool IsFd() const { return fd_view_.has_value(); }
  /// Requires IsFd().
  const FdView& fd() const { return *fd_view_; }

  /// True if all atoms use only equality / inequality (==, !=) — FDs and
  /// their generalizations. Order-predicate DCs (<, >) take the theta-join
  /// detection path.
  bool IsEqualityOnly() const;

  /// Distinct column indices referenced by any atom.
  const std::vector<size_t>& involved_columns() const {
    return involved_columns_;
  }
  bool InvolvesColumn(size_t col) const;

  /// Evaluates whether rows (a, b) of `table` jointly satisfy every atom —
  /// i.e. whether they violate the constraint. Values are read through
  /// `original()` (detection runs on raw data; repaired regions are skipped
  /// by the caller's bookkeeping). For single-tuple constraints pass a == b.
  bool ViolatedBy(const Table& table, RowId a, RowId b) const;

  /// Atom-level evaluation used by the repair module: returns which atoms
  /// hold for the pair (bitmask indexed by atom position).
  std::vector<bool> SatisfiedAtoms(const Table& table, RowId a, RowId b) const;

  std::string ToString() const;

 private:
  void DetectFd();
  void ComputeInvolvedColumns();

  std::string name_;
  std::string table_;
  int num_tuples_ = 2;
  std::vector<PredicateAtom> atoms_;
  std::optional<FdView> fd_view_;
  std::vector<size_t> involved_columns_;
};

/// Parses a constraint definition bound to `schema`:
///   "name: !(t1.zip == t2.zip & t1.city != t2.city)"   (general DC)
///   "name: FD zip -> city"                              (FD shorthand)
///   "name: FD a, b -> c"                                (multi-attr lhs)
/// The leading "name:" is optional; a default name is synthesized.
Result<DenialConstraint> ParseConstraint(const std::string& text,
                                         const std::string& table,
                                         const Schema& schema);

}  // namespace daisy

#endif  // DAISY_CONSTRAINTS_DENIAL_CONSTRAINT_H_
