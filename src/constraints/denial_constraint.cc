#include "constraints/denial_constraint.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/string_util.h"

namespace daisy {

DenialConstraint::DenialConstraint(std::string name, std::string table,
                                   int num_tuples,
                                   std::vector<PredicateAtom> atoms)
    : name_(std::move(name)),
      table_(std::move(table)),
      num_tuples_(num_tuples),
      atoms_(std::move(atoms)) {
  DetectFd();
  ComputeInvolvedColumns();
}

void DenialConstraint::DetectFd() {
  fd_view_.reset();
  if (num_tuples_ != 2 || atoms_.empty()) return;
  // FD shape: every atom relates t1.c with t2.c on the *same* column; all
  // but exactly one are ==, the remaining one is !=.
  FdView view;
  size_t neq_count = 0;
  for (const PredicateAtom& a : atoms_) {
    if (a.right_is_constant) return;
    if (a.left_tuple == a.right_tuple) return;
    if (a.left_column != a.right_column) return;
    if (a.op == CompareOp::kEq) {
      view.lhs.push_back(a.left_column);
      view.lhs_names.push_back(a.left_column_name);
    } else if (a.op == CompareOp::kNeq) {
      ++neq_count;
      view.rhs = a.left_column;
      view.rhs_name = a.left_column_name;
    } else {
      return;
    }
  }
  if (neq_count != 1 || view.lhs.empty()) return;
  fd_view_ = std::move(view);
}

void DenialConstraint::ComputeInvolvedColumns() {
  involved_columns_.clear();
  for (const PredicateAtom& a : atoms_) {
    involved_columns_.push_back(a.left_column);
    if (!a.right_is_constant) involved_columns_.push_back(a.right_column);
  }
  std::sort(involved_columns_.begin(), involved_columns_.end());
  involved_columns_.erase(
      std::unique(involved_columns_.begin(), involved_columns_.end()),
      involved_columns_.end());
}

bool DenialConstraint::IsEqualityOnly() const {
  for (const PredicateAtom& a : atoms_) {
    if (a.op != CompareOp::kEq && a.op != CompareOp::kNeq) return false;
  }
  return true;
}

bool DenialConstraint::InvolvesColumn(size_t col) const {
  return std::binary_search(involved_columns_.begin(), involved_columns_.end(),
                            col);
}

namespace {

const Value& AtomOperand(const Table& table, RowId a, RowId b, int tuple,
                         size_t column) {
  const RowId r = tuple == 0 ? a : b;
  return table.cell(r, column).original();
}

}  // namespace

bool DenialConstraint::ViolatedBy(const Table& table, RowId a, RowId b) const {
  if (num_tuples_ == 2 && a == b) return false;
  for (const PredicateAtom& atom : atoms_) {
    const Value& lhs = AtomOperand(table, a, b, atom.left_tuple,
                                   atom.left_column);
    const Value& rhs = atom.right_is_constant
                           ? atom.constant
                           : AtomOperand(table, a, b, atom.right_tuple,
                                         atom.right_column);
    if (!EvalCompare(lhs, atom.op, rhs)) return false;
  }
  return true;
}

std::vector<bool> DenialConstraint::SatisfiedAtoms(const Table& table, RowId a,
                                                   RowId b) const {
  std::vector<bool> out(atoms_.size());
  for (size_t i = 0; i < atoms_.size(); ++i) {
    const PredicateAtom& atom = atoms_[i];
    const Value& lhs = AtomOperand(table, a, b, atom.left_tuple,
                                   atom.left_column);
    const Value& rhs = atom.right_is_constant
                           ? atom.constant
                           : AtomOperand(table, a, b, atom.right_tuple,
                                         atom.right_column);
    out[i] = EvalCompare(lhs, atom.op, rhs);
  }
  return out;
}

std::string DenialConstraint::ToString() const {
  std::ostringstream oss;
  oss << name_ << "[" << table_ << "]: !(";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) oss << " & ";
    oss << atoms_[i].ToString();
  }
  oss << ")";
  return oss.str();
}

namespace {

// Parses one side of an atom: "t1.col", "t2.col", or a literal constant.
struct Operand {
  bool is_constant = false;
  int tuple = -1;
  std::string column;
  Value constant;
};

Result<Operand> ParseOperand(const std::string& raw, const Schema& schema) {
  const std::string text = Trim(raw);
  if (text.empty()) return Status::ParseError("empty operand");
  Operand op;
  if ((StartsWith(text, "t1.") || StartsWith(text, "t2.")) &&
      text.size() > 3) {
    op.tuple = text[1] == '1' ? 0 : 1;
    op.column = text.substr(3);
    if (!schema.HasColumn(op.column)) {
      return Status::ParseError("constraint references unknown column '" +
                                op.column + "'");
    }
    return op;
  }
  op.is_constant = true;
  // Quoted string literal or numeric literal.
  if (text.size() >= 2 && (text.front() == '\'' || text.front() == '"') &&
      text.back() == text.front()) {
    op.constant = Value(text.substr(1, text.size() - 2));
    return op;
  }
  if (text.find('.') != std::string::npos ||
      text.find('e') != std::string::npos) {
    auto d = Value::Parse(text, ValueType::kDouble);
    if (d.ok()) {
      op.constant = d.value();
      return op;
    }
  }
  auto i = Value::Parse(text, ValueType::kInt);
  if (i.ok()) {
    op.constant = i.value();
    return op;
  }
  // Fall back to a bare string literal.
  op.constant = Value(text);
  return op;
}

// First unquoted occurrence of `needle` in `text` at or after `from`.
// Quoted regions ('...' or "...") are opaque, so constants may contain
// operator characters, '&' and ':'.
size_t FindUnquoted(const std::string& text, const std::string& needle,
                    size_t from = 0) {
  char quote = '\0';
  for (size_t i = from; i < text.size(); ++i) {
    if (quote != '\0') {
      if (text[i] == quote) quote = '\0';
      continue;
    }
    if (text[i] == '\'' || text[i] == '"') {
      quote = text[i];
      continue;
    }
    if (text.compare(i, needle.size(), needle) == 0) return i;
  }
  return std::string::npos;
}

// Splits on an unquoted separator character.
std::vector<std::string> SplitUnquoted(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = FindUnquoted(text, std::string(1, sep), start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool QuotesBalanced(const std::string& text) {
  char quote = '\0';
  for (char c : text) {
    if (quote != '\0') {
      if (c == quote) quote = '\0';
    } else if (c == '\'' || c == '"') {
      quote = c;
    }
  }
  return quote == '\0';
}

// A rule-name prefix must look like an identifier; anything else (e.g. an
// atom whose quoted constant contains ':') is part of the body.
bool IsRuleName(const std::string& text) {
  if (text.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(text.front()))) return false;
  for (char c : text) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-') {
      return false;
    }
  }
  return true;
}

Result<PredicateAtom> ParseAtom(const std::string& raw, const Schema& schema) {
  const std::string text = Trim(raw);
  // Find the operator outside quoted constants. Longest-match first to keep
  // "<=" from parsing as "<".
  static const char* kOps[] = {"<=", ">=", "==", "!=", "<>", "<", ">", "="};
  size_t op_pos = std::string::npos;
  std::string op_token;
  for (const char* candidate : kOps) {
    const size_t pos = FindUnquoted(text, candidate);
    if (pos != std::string::npos &&
        (op_pos == std::string::npos || pos < op_pos ||
         (pos == op_pos && std::string(candidate).size() > op_token.size()))) {
      op_pos = pos;
      op_token = candidate;
    }
  }
  if (op_pos == std::string::npos) {
    return Status::ParseError("no comparison operator in atom '" + text + "'");
  }
  DAISY_ASSIGN_OR_RETURN(CompareOp op, ParseCompareOp(op_token));
  DAISY_ASSIGN_OR_RETURN(Operand left,
                         ParseOperand(text.substr(0, op_pos), schema));
  DAISY_ASSIGN_OR_RETURN(
      Operand right, ParseOperand(text.substr(op_pos + op_token.size()), schema));
  if (left.is_constant && right.is_constant) {
    return Status::ParseError("atom '" + text + "' compares two constants");
  }
  // Normalize so the tuple reference is on the left.
  if (left.is_constant) {
    std::swap(left, right);
    op = FlipOp(op);
  }
  PredicateAtom atom;
  atom.left_tuple = left.tuple;
  atom.left_column_name = left.column;
  DAISY_ASSIGN_OR_RETURN(atom.left_column, schema.ColumnIndex(left.column));
  atom.op = op;
  if (right.is_constant) {
    atom.right_is_constant = true;
    atom.constant = right.constant;
  } else {
    atom.right_tuple = right.tuple;
    atom.right_column_name = right.column;
    DAISY_ASSIGN_OR_RETURN(atom.right_column,
                           schema.ColumnIndex(right.column));
  }
  return atom;
}

Result<DenialConstraint> ParseFdShorthand(const std::string& name,
                                          const std::string& body,
                                          const std::string& table,
                                          const Schema& schema) {
  const size_t arrow = body.find("->");
  if (arrow == std::string::npos) {
    return Status::ParseError("FD shorthand needs '->': " + body);
  }
  std::vector<PredicateAtom> atoms;
  for (const std::string& part : Split(body.substr(0, arrow), ',')) {
    const std::string col = Trim(part);
    if (col.empty()) return Status::ParseError("empty FD lhs attribute");
    PredicateAtom atom;
    atom.left_tuple = 0;
    atom.right_tuple = 1;
    atom.left_column_name = atom.right_column_name = col;
    DAISY_ASSIGN_OR_RETURN(atom.left_column, schema.ColumnIndex(col));
    atom.right_column = atom.left_column;
    atom.op = CompareOp::kEq;
    atoms.push_back(std::move(atom));
  }
  const std::string rhs = Trim(body.substr(arrow + 2));
  if (rhs.find(',') != std::string::npos) {
    return Status::ParseError(
        "FD rhs must be a single attribute (split Y1,Y2 into separate FDs): " +
        rhs);
  }
  PredicateAtom neq;
  neq.left_tuple = 0;
  neq.right_tuple = 1;
  neq.left_column_name = neq.right_column_name = rhs;
  DAISY_ASSIGN_OR_RETURN(neq.left_column, schema.ColumnIndex(rhs));
  neq.right_column = neq.left_column;
  neq.op = CompareOp::kNeq;
  atoms.push_back(std::move(neq));
  return DenialConstraint(name, table, 2, std::move(atoms));
}

}  // namespace

Result<DenialConstraint> ParseConstraint(const std::string& text,
                                         const std::string& table,
                                         const Schema& schema) {
  std::string body = Trim(text);
  if (!QuotesBalanced(body)) {
    return Status::ParseError("unterminated quote in constraint '" + text +
                              "'");
  }
  std::string name;
  // Optional "name:" prefix. Only an identifier-shaped prefix before the
  // first *unquoted* colon counts as a name, so quoted constants containing
  // ':' parse as part of the body instead of being mis-split.
  const size_t colon = FindUnquoted(body, ":");
  if (colon != std::string::npos) {
    const std::string maybe_name = Trim(body.substr(0, colon));
    if (IsRuleName(maybe_name)) {
      name = maybe_name;
      body = Trim(body.substr(colon + 1));
    }
  }
  if (name.empty()) name = "dc_" + table;

  const std::string lowered = ToLower(body);
  if (StartsWith(lowered, "fd ") || StartsWith(lowered, "fd:")) {
    return ParseFdShorthand(name, body.substr(3), table, schema);
  }

  // General form: optional leading "!" and surrounding parentheses.
  if (!body.empty() && body.front() == '!') body = Trim(body.substr(1));
  if (!body.empty() && body.front() == '(' && body.back() == ')') {
    body = Trim(body.substr(1, body.size() - 2));
  }
  if (body.empty()) return Status::ParseError("empty constraint body");

  std::vector<PredicateAtom> atoms;
  int num_tuples = 1;
  for (const std::string& part : SplitUnquoted(body, '&')) {
    const std::string atom_text = Trim(part);
    if (atom_text.empty()) {
      return Status::ParseError("empty atom in constraint '" + text + "'");
    }
    DAISY_ASSIGN_OR_RETURN(PredicateAtom atom, ParseAtom(atom_text, schema));
    if (atom.left_tuple == 1 ||
        (!atom.right_is_constant && atom.right_tuple == 1)) {
      num_tuples = 2;
    }
    atoms.push_back(std::move(atom));
  }
  return DenialConstraint(name, table, num_tuples, std::move(atoms));
}

}  // namespace daisy
