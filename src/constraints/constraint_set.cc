#include "constraints/constraint_set.h"

namespace daisy {

Status ConstraintSet::Add(DenialConstraint dc) {
  for (const DenialConstraint& existing : constraints_) {
    if (existing.name() == dc.name()) {
      return Status::AlreadyExists("constraint '" + dc.name() +
                                   "' already defined");
    }
  }
  constraints_.push_back(std::move(dc));
  return Status::OK();
}

Status ConstraintSet::AddFromText(const std::string& text,
                                  const std::string& table,
                                  const Schema& schema) {
  DAISY_ASSIGN_OR_RETURN(DenialConstraint dc,
                         ParseConstraint(text, table, schema));
  return Add(std::move(dc));
}

std::vector<const DenialConstraint*> ConstraintSet::ForTable(
    const std::string& table) const {
  std::vector<const DenialConstraint*> out;
  for (const DenialConstraint& dc : constraints_) {
    if (dc.table() == table) out.push_back(&dc);
  }
  return out;
}

std::vector<const DenialConstraint*> ConstraintSet::Overlapping(
    const std::string& table, const std::vector<size_t>& columns) const {
  std::vector<const DenialConstraint*> out;
  for (const DenialConstraint& dc : constraints_) {
    if (dc.table() != table) continue;
    for (size_t col : columns) {
      if (dc.InvolvesColumn(col)) {
        out.push_back(&dc);
        break;
      }
    }
  }
  return out;
}

Result<const DenialConstraint*> ConstraintSet::FindByName(
    const std::string& name) const {
  for (const DenialConstraint& dc : constraints_) {
    if (dc.name() == name) return &dc;
  }
  return Status::NotFound("no constraint named '" + name + "'");
}

}  // namespace daisy
