#include "constraints/predicate.h"

#include <sstream>

namespace daisy {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNeq:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLeq:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGeq:
      return ">=";
  }
  return "?";
}

Result<CompareOp> ParseCompareOp(const std::string& token) {
  if (token == "=" || token == "==") return CompareOp::kEq;
  if (token == "!=" || token == "<>") return CompareOp::kNeq;
  if (token == "<") return CompareOp::kLt;
  if (token == "<=") return CompareOp::kLeq;
  if (token == ">") return CompareOp::kGt;
  if (token == ">=") return CompareOp::kGeq;
  return Status::ParseError("unknown comparison operator '" + token + "'");
}

CompareOp NegateOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNeq;
    case CompareOp::kNeq:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGeq;
    case CompareOp::kLeq:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLeq;
    case CompareOp::kGeq:
      return CompareOp::kLt;
  }
  return op;
}

CompareOp FlipOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNeq:
      return CompareOp::kNeq;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLeq:
      return CompareOp::kGeq;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGeq:
      return CompareOp::kLeq;
  }
  return op;
}

bool EvalCompare(const Value& a, CompareOp op, const Value& b) {
  if (a.is_null() || b.is_null()) {
    // SQL-ish null semantics restricted to what detection needs: null equals
    // only null; inequality comparisons against null never hold.
    switch (op) {
      case CompareOp::kEq:
        return a.is_null() && b.is_null();
      case CompareOp::kNeq:
        return a.is_null() != b.is_null();
      default:
        return false;
    }
  }
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNeq:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLeq:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGeq:
      return a >= b;
  }
  return false;
}

std::string PredicateAtom::ToString() const {
  std::ostringstream oss;
  oss << "t" << left_tuple + 1 << "." << left_column_name << " "
      << CompareOpToString(op) << " ";
  if (right_is_constant) {
    oss << constant.ToString();
  } else {
    oss << "t" << right_tuple + 1 << "." << right_column_name;
  }
  return oss.str();
}

bool PredicateAtom::operator==(const PredicateAtom& other) const {
  return left_tuple == other.left_tuple && left_column == other.left_column &&
         op == other.op && right_is_constant == other.right_is_constant &&
         right_tuple == other.right_tuple &&
         right_column == other.right_column && constant == other.constant;
}

}  // namespace daisy
