// A collection of denial constraints, indexed by table and by column.

#ifndef DAISY_CONSTRAINTS_CONSTRAINT_SET_H_
#define DAISY_CONSTRAINTS_CONSTRAINT_SET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "constraints/denial_constraint.h"

namespace daisy {

/// Owns all constraints of a cleaning session. Lookup helpers answer the
/// planner's central question: "does this query attribute overlap a rule?"
class ConstraintSet {
 public:
  ConstraintSet() = default;

  /// Adds a constraint. Names must be unique.
  Status Add(DenialConstraint dc);

  /// Parses and adds (see ParseConstraint).
  Status AddFromText(const std::string& text, const std::string& table,
                     const Schema& schema);

  size_t size() const { return constraints_.size(); }
  bool empty() const { return constraints_.empty(); }
  const std::vector<DenialConstraint>& all() const { return constraints_; }
  const DenialConstraint& at(size_t i) const { return constraints_[i]; }

  /// Constraints bound to `table`.
  std::vector<const DenialConstraint*> ForTable(
      const std::string& table) const;

  /// Constraints on `table` that involve any of `columns`
  /// ((X∪Y) ∩ (P∪W) ≠ ∅ in the paper).
  std::vector<const DenialConstraint*> Overlapping(
      const std::string& table, const std::vector<size_t>& columns) const;

  Result<const DenialConstraint*> FindByName(const std::string& name) const;

 private:
  std::vector<DenialConstraint> constraints_;
};

}  // namespace daisy

#endif  // DAISY_CONSTRAINTS_CONSTRAINT_SET_H_
