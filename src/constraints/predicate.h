// Comparison operators and predicate atoms of denial constraints.

#ifndef DAISY_CONSTRAINTS_PREDICATE_H_
#define DAISY_CONSTRAINTS_PREDICATE_H_

#include <string>

#include "common/status.h"
#include "common/value.h"

namespace daisy {

/// Binary comparison operators allowed in DC atoms and WHERE clauses.
enum class CompareOp {
  kEq,
  kNeq,
  kLt,
  kLeq,
  kGt,
  kGeq,
};

/// "==", "!=", "<", "<=", ">", ">=".
const char* CompareOpToString(CompareOp op);

/// Parses an operator token. Accepts "=", "==", "!=", "<>", "<", "<=", ">",
/// ">=".
Result<CompareOp> ParseCompareOp(const std::string& token);

/// The logical negation: == -> !=, < -> >=, etc. Used when inverting violated
/// atoms during holistic DC repair.
CompareOp NegateOp(CompareOp op);

/// Mirrors the operator across the comparison: a < b <=> b > a.
CompareOp FlipOp(CompareOp op);

/// Evaluates `a op b` under Value ordering semantics. Comparisons against
/// null are false except `null == null` and `x != null` (x non-null).
bool EvalCompare(const Value& a, CompareOp op, const Value& b);

/// One atom p_i of a DC: `t<L>.col <op> t<R>.col` or `t<L>.col <op> const`.
/// Tuple indices are 0-based (t1 -> 0). Column indices are resolved against
/// the table schema when the constraint is bound.
struct PredicateAtom {
  int left_tuple = 0;
  size_t left_column = 0;
  std::string left_column_name;

  CompareOp op = CompareOp::kEq;

  bool right_is_constant = false;
  int right_tuple = 0;
  size_t right_column = 0;
  std::string right_column_name;
  Value constant;

  /// "t1.zip == t2.zip" / "t1.salary > 100".
  std::string ToString() const;

  bool operator==(const PredicateAtom& other) const;
};

}  // namespace daisy

#endif  // DAISY_CONSTRAINTS_PREDICATE_H_
