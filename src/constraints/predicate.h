// Comparison operators and predicate atoms of denial constraints.

#ifndef DAISY_CONSTRAINTS_PREDICATE_H_
#define DAISY_CONSTRAINTS_PREDICATE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/value.h"

namespace daisy {

/// Binary comparison operators allowed in DC atoms and WHERE clauses.
enum class CompareOp {
  kEq,
  kNeq,
  kLt,
  kLeq,
  kGt,
  kGeq,
};

/// "==", "!=", "<", "<=", ">", ">=".
const char* CompareOpToString(CompareOp op);

/// Parses an operator token. Accepts "=", "==", "!=", "<>", "<", "<=", ">",
/// ">=".
Result<CompareOp> ParseCompareOp(const std::string& token);

/// The logical negation: == -> !=, < -> >=, etc. Used when inverting violated
/// atoms during holistic DC repair.
CompareOp NegateOp(CompareOp op);

/// Mirrors the operator across the comparison: a < b <=> b > a.
CompareOp FlipOp(CompareOp op);

/// Evaluates `a op b` under Value ordering semantics. Comparisons against
/// null are false except `null == null` and `x != null` (x non-null).
bool EvalCompare(const Value& a, CompareOp op, const Value& b);

// Flat-array forms of EvalCompare, shared by every consumer that evaluates
// on ColumnCache projections (theta-join atom compilation, compiled plan
// filters). Keeping them here means null/ordering semantics cannot diverge
// between the detectors and the query runtime.

/// EvalCompare's null branch over precomputed null flags: null equals only
/// null; inequality comparisons against null never hold.
inline bool NullCompare(bool lnull, bool rnull, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return lnull && rnull;
    case CompareOp::kNeq:
      return lnull != rnull;
    default:
      return false;
  }
}

/// `a op b` on the numeric double projection (non-null operands only).
inline bool CompareDoubles(double a, CompareOp op, double b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNeq:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLeq:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGeq:
      return a >= b;
  }
  return false;
}

/// `a op b` on dense Compare ranks of one column (non-null operands only).
inline bool CompareRanks(uint32_t a, CompareOp op, uint32_t b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNeq:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLeq:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGeq:
      return a >= b;
  }
  return false;
}

/// One atom p_i of a DC: `t<L>.col <op> t<R>.col` or `t<L>.col <op> const`.
/// Tuple indices are 0-based (t1 -> 0). Column indices are resolved against
/// the table schema when the constraint is bound.
struct PredicateAtom {
  int left_tuple = 0;
  size_t left_column = 0;
  std::string left_column_name;

  CompareOp op = CompareOp::kEq;

  bool right_is_constant = false;
  int right_tuple = 0;
  size_t right_column = 0;
  std::string right_column_name;
  Value constant;

  /// "t1.zip == t2.zip" / "t1.salary > 100".
  std::string ToString() const;

  bool operator==(const PredicateAtom& other) const;
};

}  // namespace daisy

#endif  // DAISY_CONSTRAINTS_PREDICATE_H_
