// Quickstart: the paper's running example (Tables 1-3).
//
// Builds the Cities dataset, declares the FD zip -> city, and runs two
// exploratory queries through Daisy. The first (a filter on the rhs)
// shows the relaxed, probabilistically repaired result; the second (a
// filter on the lhs) shows a tuple *entering* the corrected result because
// one of its candidate zip values qualifies.
//
//   ./examples/quickstart

#include <cstdio>

#include "clean/daisy_engine.h"

using daisy::ConstraintSet;
using daisy::Database;
using daisy::DaisyEngine;
using daisy::DaisyOptions;
using daisy::QueryReport;
using daisy::Schema;
using daisy::Table;
using daisy::Value;
using daisy::ValueType;

namespace {

void PrintReport(const char* title, const QueryReport& report) {
  std::printf("\n== %s ==\n", title);
  std::printf("%s", report.output.result.ToString(10).c_str());
  std::printf(
      "cleaning: %zu correlated tuples fetched, %zu tuples repaired\n",
      report.extra_tuples, report.errors_fixed);
}

}  // namespace

int main() {
  // --- 1. Load the dirty dataset (Table 2a of the paper). ---------------
  Database db;
  Table cities("cities", Schema({{"zip", ValueType::kInt},
                                 {"city", ValueType::kString}}));
  struct {
    int zip;
    const char* city;
  } rows[] = {{9001, "Los Angeles"},
              {9001, "San Francisco"},
              {9001, "Los Angeles"},
              {10001, "San Francisco"},
              {10001, "New York"}};
  for (const auto& r : rows) {
    if (auto st = cities.AppendRow({Value(r.zip), Value(r.city)}); !st.ok()) {
      std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (auto st = db.AddTable(std::move(cities)); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // --- 2. Declare the rule: the zip code determines the city. -----------
  ConstraintSet rules;
  const Schema& schema = db.GetTable("cities").ValueOrDie()->schema();
  if (auto st = rules.AddFromText("phi: FD zip -> city", "cities", schema);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // --- 3. Query through Daisy; cleaning happens on demand. --------------
  DaisyEngine engine(&db, std::move(rules), DaisyOptions{});
  if (auto st = engine.Prepare(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  auto q1 = engine.Query(
      "SELECT zip, city FROM cities WHERE city = 'Los Angeles'");
  if (!q1.ok()) {
    std::fprintf(stderr, "query failed: %s\n", q1.status().ToString().c_str());
    return 1;
  }
  PrintReport("Example 2: zip codes of 'Los Angeles' (rhs filter)",
              q1.value());

  auto q2 = engine.Query("SELECT zip, city FROM cities WHERE zip = 9001");
  if (!q2.ok()) {
    std::fprintf(stderr, "query failed: %s\n", q2.status().ToString().c_str());
    return 1;
  }
  PrintReport("Example 3: cities with zip 9001 (lhs filter)", q2.value());
  std::printf(
      "\nNote the extra tuple whose zip candidates {9001, 10001} admit it "
      "into the result (Table 3 of the paper).\n");

  // --- 4. The dataset is now partially probabilistic, in place. ---------
  const Table* cleaned = db.GetTable("cities").ValueOrDie();
  std::printf("\n== Probabilistic dataset after the two queries ==\n%s",
              cleaned->ToString(10).c_str());
  std::printf("probabilistic cells: %zu\n",
              cleaned->CountProbabilisticCells());
  return 0;
}
