// Exploratory analysis over a dirty SSB-style sales database.
//
// Generates a lineorder fact table (FD orderkey -> suppkey, 10% of the
// suppliers per order edited) and a supplier dimension (FD address ->
// suppkey), then drives a mixed SP + join workload through Daisy in
// adaptive mode. Shows the cost model switching from incremental to full
// cleaning mid-workload and compares against the offline baseline.
//
//   ./examples/sales_exploration

#include <cstdio>

#include "clean/daisy_engine.h"
#include "common/timer.h"
#include "datagen/ssb.h"
#include "datagen/workload.h"
#include "offline/offline_cleaner.h"

using namespace daisy;

int main() {
  // --- Data: 8k lineorder rows, 400 orders, 40 suppliers. ---------------
  SsbConfig config;
  config.num_rows = 8000;
  config.distinct_orderkeys = 400;
  config.distinct_suppkeys = 40;
  config.violating_fraction = 0.6;
  config.error_rate = 0.1;
  GeneratedData lineorder = GenerateLineorder(config);
  GeneratedData supplier = GenerateSupplier(400, 40, 0.5, 0.2, 9);

  Database db;
  (void)db.AddTable(std::move(lineorder.dirty));
  (void)db.AddTable(std::move(supplier.dirty));

  ConstraintSet rules;
  (void)rules.AddFromText("phi: FD orderkey -> suppkey", "lineorder",
                          db.GetTable("lineorder").ValueOrDie()->schema());
  (void)rules.AddFromText("psi: FD address -> suppkey", "supplier",
                          db.GetTable("supplier").ValueOrDie()->schema());

  DaisyOptions options;
  options.mode = DaisyOptions::Mode::kAdaptive;
  DaisyEngine engine(&db, std::move(rules), options);
  if (auto st = engine.Prepare(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  const auto* stats = engine.statistics().ForRule("phi");
  std::printf("lineorder: %zu rows, %zu violating rows in %zu dirty groups\n",
              stats->table_rows, stats->num_violating_rows,
              stats->num_violating_groups);

  // --- Workload: 20 SP range scans + 5 joins. ----------------------------
  auto sp_queries =
      MakeRandomSelectivityQueries(*db.GetTable("lineorder").ValueOrDie(),
                                   "orderkey", 20, 17,
                                   "orderkey, suppkey, extended_price")
          .ValueOrDie();

  Timer total;
  size_t query_no = 0;
  for (const std::string& sql : sp_queries) {
    Timer t;
    auto report = engine.Query(sql);
    if (!report.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("q%02zu  rows=%-5zu repaired=%-4zu %s%.1f ms\n", query_no++,
                report.value().output.result.num_rows(),
                report.value().errors_fixed,
                report.value().switched_to_full ? "[switched to full] " : "",
                t.ElapsedMillis());
  }

  for (int i = 0; i < 5; ++i) {
    const int lo = i * 80, hi = i * 80 + 79;
    char sql[256];
    std::snprintf(sql, sizeof(sql),
                  "SELECT lineorder.orderkey, supplier.name, "
                  "SUM(lineorder.revenue) AS rev "
                  "FROM lineorder, supplier "
                  "WHERE lineorder.suppkey = supplier.suppkey AND "
                  "lineorder.orderkey >= %d AND lineorder.orderkey <= %d "
                  "GROUP BY lineorder.orderkey, supplier.name",
                  lo, hi);
    Timer t;
    auto report = engine.Query(sql);
    if (!report.ok()) {
      std::fprintf(stderr, "join failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("join%02d groups=%-5zu repaired=%-4zu %.1f ms\n", i,
                report.value().output.result.num_rows(),
                report.value().errors_fixed, t.ElapsedMillis());
  }
  std::printf("Daisy total: %.1f ms\n", total.ElapsedMillis());

  // --- Offline comparison on a fresh copy. -------------------------------
  Database offline_db;
  GeneratedData lineorder2 = GenerateLineorder(config);
  GeneratedData supplier2 = GenerateSupplier(400, 40, 0.5, 0.2, 9);
  (void)offline_db.AddTable(std::move(lineorder2.dirty));
  (void)offline_db.AddTable(std::move(supplier2.dirty));
  ConstraintSet offline_rules;
  (void)offline_rules.AddFromText(
      "phi: FD orderkey -> suppkey", "lineorder",
      offline_db.GetTable("lineorder").ValueOrDie()->schema());
  (void)offline_rules.AddFromText(
      "psi: FD address -> suppkey", "supplier",
      offline_db.GetTable("supplier").ValueOrDie()->schema());
  Timer offline_timer;
  OfflineCleaner cleaner(&offline_db, &offline_rules);
  auto cstats = cleaner.CleanAll();
  if (!cstats.ok()) {
    std::fprintf(stderr, "%s\n", cstats.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Offline full cleaning: %.1f ms (%zu dataset passes) before any "
      "query could run\n",
      offline_timer.ElapsedMillis(), cstats.value().dataset_passes);
  return 0;
}
