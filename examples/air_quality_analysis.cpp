// Air-quality exploration (the Section 7.3 Kaggle scenario): per-county
// CO trends over years, over a measurements table whose
// (state_code, county_code) -> county_name FD is violated on infrequent
// county pairs. Offline cleaning iterates per dirty group and becomes
// impractical as groups grow; Daisy cleans only the counties the analyst
// actually visits.
//
//   ./examples/air_quality_analysis

#include <cstdio>

#include "clean/daisy_engine.h"
#include "common/timer.h"
#include "datagen/realworld.h"

using namespace daisy;

int main() {
  AirQualityConfig config;
  config.num_rows = 30000;
  config.violating_group_fraction = 0.3;
  GeneratedData data = GenerateAirQuality(config);

  Database db;
  (void)db.AddTable(std::move(data.dirty));
  ConstraintSet rules;
  (void)rules.AddFromText("phi: FD state_code, county_code -> county_name",
                          "airquality",
                          db.GetTable("airquality").ValueOrDie()->schema());

  DaisyEngine engine(&db, std::move(rules), DaisyOptions{});
  if (auto st = engine.Prepare(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const auto* stats = engine.statistics().ForRule("phi");
  std::printf(
      "airquality: %zu rows; %zu rows inside %zu violating county groups\n",
      stats->table_rows, stats->num_violating_rows,
      stats->num_violating_groups);

  // One query per analyzed location: average CO by year for a county.
  // The sampled counties span the popularity range, so some of them sit in
  // the corrupted (infrequent) tail where relaxation pulls in the
  // misspelled measurement rows.
  Timer total;
  size_t repaired_total = 0;
  for (int k = 0; k < 12; ++k) {
    const int county = k * 40;
    char sql[256];
    std::snprintf(sql, sizeof(sql),
                  "SELECT year, AVG(sample_measurement) AS avg_co, COUNT(*) "
                  "FROM airquality WHERE county_name = 'county_%d' "
                  "GROUP BY year",
                  county);
    Timer t;
    auto report = engine.Query(sql);
    if (!report.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    repaired_total += report.value().errors_fixed;
    std::printf("county_%-4d years=%-3zu repaired=%-3zu %.1f ms\n", county,
                report.value().output.result.num_rows(),
                report.value().errors_fixed, t.ElapsedMillis());
  }
  std::printf(
      "analysis over 12 counties: %.1f ms total, %zu tuples repaired "
      "on demand (the remaining %zu dirty rows were never touched)\n",
      total.ElapsedMillis(), repaired_total,
      stats->num_violating_rows - repaired_total);
  return 0;
}
