// Repair-accuracy study on the hospital dataset (the Table 5 scenario):
// compares three repair policies against the known ground truth as the
// rule set grows —
//   HoloClean-sim : co-occurrence domains + naive-Bayes inference,
//   DaisyH        : Daisy's relaxation-driven domains + the same inference,
//   DaisyP        : Daisy picking each cell's most probable candidate.
//
//   ./examples/hospital_accuracy

#include <cstdio>
#include <vector>

#include "clean/daisy_engine.h"
#include "datagen/metrics.h"
#include "datagen/realworld.h"
#include "holo/holoclean_sim.h"

using namespace daisy;

namespace {

ConstraintSet RuleSubset(const Schema& schema, size_t count) {
  static const char* kRules[] = {"phi1: FD zip -> city",
                                 "phi2: FD hospital_name -> zip",
                                 "phi3: FD phone -> zip"};
  ConstraintSet rules;
  for (size_t i = 0; i < count; ++i) {
    (void)rules.AddFromText(kRules[i], "hospital", schema);
  }
  return rules;
}

}  // namespace

int main() {
  HospitalConfig config;
  config.num_rows = 600;
  config.num_hospitals = 30;
  config.cell_error_rate = 0.05;

  std::printf("%-12s %-12s %10s %10s %10s\n", "rules", "policy", "precision",
              "recall", "F1");
  for (size_t nrules = 1; nrules <= 3; ++nrules) {
    // --- HoloClean-sim on a fresh dirty copy. ----------------------------
    {
      GeneratedData data = GenerateHospital(config);
      ConstraintSet rules = RuleSubset(data.dirty.schema(), nrules);
      HoloCleanSim sim(&data.dirty, &rules, HoloOptions{});
      auto repairs = sim.Run();
      if (!repairs.ok()) return 1;
      auto m = EvaluateCellRepairs(data.dirty, data.truth, repairs.value())
                   .ValueOrDie();
      std::printf("phi1..phi%zu   %-12s %10.3f %10.3f %10.3f\n", nrules,
                  "holoclean", m.precision(), m.recall(), m.f1());
    }
    // --- Daisy (shared cleaning run for DaisyH and DaisyP). --------------
    GeneratedData data = GenerateHospital(config);
    Database db;
    (void)db.AddTable(std::move(data.dirty));
    Table* table = db.GetTable("hospital").ValueOrDie();
    DaisyEngine engine(&db, RuleSubset(table->schema(), nrules),
                       DaisyOptions{});
    if (!engine.Prepare().ok() || !engine.CleanAllRemaining().ok()) return 1;

    {  // DaisyH: Daisy domains + HoloClean inference.
      std::vector<std::pair<std::pair<RowId, size_t>, std::vector<Value>>>
          domains;
      for (RowId r = 0; r < table->num_rows(); ++r) {
        for (size_t c = 0; c < table->num_columns(); ++c) {
          if (table->cell(r, c).is_probabilistic()) {
            domains.push_back({{r, c}, table->cell(r, c).PossibleValues()});
          }
        }
      }
      ConstraintSet rules = RuleSubset(table->schema(), nrules);
      HoloCleanSim sim(table, &rules, HoloOptions{});
      auto repairs = sim.InferWithDomains(domains);
      if (!repairs.ok()) return 1;
      auto m = EvaluateCellRepairs(*table, data.truth, repairs.value())
                   .ValueOrDie();
      std::printf("phi1..phi%zu   %-12s %10.3f %10.3f %10.3f\n", nrules,
                  "daisyH", m.precision(), m.recall(), m.f1());
    }
    {  // DaisyP: most probable candidate.
      auto m = EvaluateTableRepairs(*table, data.truth).ValueOrDie();
      std::printf("phi1..phi%zu   %-12s %10.3f %10.3f %10.3f\n", nrules,
                  "daisyP", m.precision(), m.recall(), m.f1());
    }
  }
  return 0;
}
