// Checkpoint/restore walkthrough: the pay-as-you-go cleaning investment
// surviving a process restart.
//
//   1. load a dirty relation + rules, serve queries (each query cleans
//      what it touches),
//   2. enable persistence and checkpoint,
//   3. "restart" (drop every in-memory structure),
//   4. DaisyEngine::Open the state directory: the recovered engine serves
//      the same answers with zero re-detection — EXPLAIN still shows the
//      statistics-pruned plan and the first query reports no detect ops.
//
// Build & run:  cmake --build build --target checkpoint_restore &&
//               ./build/checkpoint_restore

#include <unistd.h>

#include <cstdio>
#include <memory>

#include "clean/daisy_engine.h"
#include "storage/database.h"

using namespace daisy;

namespace {

void MustOk(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

Schema CitySchema() {
  return Schema({{"zip", ValueType::kInt},
                 {"city", ValueType::kString},
                 {"salary", ValueType::kDouble},
                 {"tax", ValueType::kDouble}});
}

Table DirtyCities() {
  Table t("cities", CitySchema());
  // zip 10001 disagrees on the city (an FD violation), and row 3 has a
  // tax inversion against everyone richer (a DC violation).
  struct Row { int zip; const char* city; double salary; double tax; };
  const Row rows[] = {
      {10001, "New York", 85000, 0.425}, {10001, "New York", 62000, 0.310},
      {10001, "Newark", 91000, 0.455},   {94103, "San Francisco", 48000, 0.9},
      {94103, "San Francisco", 120000, 0.600},
      {60601, "Chicago", 75000, 0.375},  {60601, "Chicago", 69000, 0.345},
  };
  for (const Row& r : rows) {
    MustOk(t.AppendRow(
               {Value(r.zip), Value(r.city), Value(r.salary), Value(r.tax)}),
           "append");
  }
  return t;
}

ConstraintSet Rules() {
  ConstraintSet rules;
  MustOk(rules.AddFromText("phi: FD zip -> city", "cities", CitySchema()),
         "add phi");
  MustOk(rules.AddFromText(
             "psi: !(t1.salary < t2.salary & t1.tax > t2.tax)", "cities",
             CitySchema()),
         "add psi");
  return rules;
}

void Show(const char* tag, const QueryReport& report) {
  std::printf("[%s] rows=%zu fixed=%zu detect_ops=%zu pruned=%zu%s\n", tag,
              report.output.result.num_rows(), report.errors_fixed,
              report.detect_ops, report.rules_pruned,
              report.read_path ? " (read path)" : "");
}

}  // namespace

int main() {
  char tmpl[] = "/tmp/daisy_checkpoint_demo_XXXXXX";
  const char* demo_dir = mkdtemp(tmpl);
  if (demo_dir == nullptr) return 1;
  const std::string state_dir = std::string(demo_dir) + "/state";

  std::printf("== session 1: query-driven cleaning ==\n");
  {
    Database db;
    MustOk(db.AddTable(DirtyCities()), "add table");
    DaisyEngine daisy(&db, Rules());
    MustOk(daisy.Prepare(), "prepare");

    // Each query pays for the cleaning its scope needs — this is the
    // investment the persistence layer keeps.
    Show("q1", daisy.Query("SELECT city FROM cities WHERE zip == 10001")
                   .ValueOrDie());
    Show("q2", daisy.Query("SELECT * FROM cities WHERE salary > 40000")
                   .ValueOrDie());

    MustOk(daisy.EnablePersistence(state_dir), "enable persistence");
    // Post-persistence work lands in the write-ahead log...
    daisy.AppendRows("cities", {{Value(60601), Value("Chicago"),
                                 Value(99000.0), Value(0.495)}})
        .ValueOrDie();
    Show("q3", daisy.Query("SELECT city FROM cities WHERE zip == 60601")
                   .ValueOrDie());
    // ...and Checkpoint folds it into a fresh snapshot (WAL truncates).
    MustOk(daisy.Checkpoint(), "checkpoint");
    std::printf("checkpointed to %s\n\n", state_dir.c_str());
  }  // everything in memory is gone here — the "restart"

  std::printf("== session 2: warm recovery ==\n");
  Database db2;
  std::unique_ptr<DaisyEngine> daisy =
      DaisyEngine::Open(state_dir, &db2).ValueOrDie();

  // Coverage survived: both rules are still fully checked over their
  // touched scope, so EXPLAIN shows the cleanσ operators pruned away and
  // the first query does zero detection work.
  std::printf("%s\n",
              daisy->Explain("SELECT city FROM cities WHERE zip == 10001")
                  .ValueOrDie()
                  .c_str());
  Show("q1'", daisy->Query("SELECT city FROM cities WHERE zip == 10001")
                  .ValueOrDie());
  Show("q2'", daisy->Query("SELECT * FROM cities WHERE salary > 40000")
                  .ValueOrDie());
  std::printf("phi fully checked: %s, psi fully checked: %s\n",
              daisy->RuleFullyChecked("phi").ValueOrDie() ? "yes" : "no",
              daisy->RuleFullyChecked("psi").ValueOrDie() ? "yes" : "no");
  std::printf("\nstate directory kept at %s (delete at will)\n", demo_dir);
  return 0;
}
