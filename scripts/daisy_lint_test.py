#!/usr/bin/env python3
"""Self-test for daisy_lint.py: per rule, one fixture that must FAIL the
lint and one that must PASS, so the linter's teeth cannot silently rot.

Fixtures are written into a temp tree shaped like the repo (src/, tools/,
tests/) because the rules are directory-scoped. Run directly or from
CTest; exits nonzero on the first failed expectation.
"""

import os
import shutil
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "daisy_lint.py")

# (name, repo-relative path, file content, expected finding count)
FIXTURES = [
    # --- raw-io ---
    ("raw-io posix call flagged", "src/x/a.cc",
     'int f(int fd) { return ::write(fd, "x", 1); }\n', 1),
    ("raw-io fstream flagged", "src/x/b.cc",
     '#include <fstream>\nvoid f() { std::ofstream out("p"); }\n', 1),
    ("raw-io allowed with pragma", "src/x/c.cc",
     "// daisy-lint: allow(raw-io) socket file cleanup, not data\n"
     'int f() { return ::unlink("p"); }\n', 0),
    ("raw-io pragma without reason is a finding", "src/x/d.cc",
     "// daisy-lint: allow(raw-io)\n"
     'int f() { return ::unlink("p"); }\n', 2),
    ("raw-io exempt in env.cc", "src/persist/env.cc",
     'int f(int fd) { return ::fsync(fd); }\n', 0),
    ("raw-io in comment ignored", "src/x/e.cc",
     "// calls ::write(fd) eventually, via persist::Env\nint x;\n", 0),
    ("raw-io in string ignored", "src/x/f.cc",
     'const char* k = "::rename(a, b)";\n', 0),
    ("raw-io not scoped to tests", "tests/a_test.cpp",
     'int f(int fd) { return ::write(fd, "x", 1); }\n', 0),
    # --- raw-stderr ---
    ("std::cerr flagged in src", "src/x/k.cc",
     '#include <iostream>\nvoid f() { std::cerr << "oops\\n"; }\n', 1),
    ("fprintf(stderr) flagged in src", "src/x/l.cc",
     '#include <cstdio>\nvoid f() { std::fprintf(stderr, "oops\\n"); }\n',
     1),
    ("fprintf(stderr) flagged in tools", "tools/m_main.cc",
     '#include <cstdio>\nint main() { fprintf(stderr, "x\\n"); }\n', 1),
    ("stderr exempt in logger.cc", "src/common/logger.cc",
     '#include <cstdio>\nvoid f() { std::fprintf(stderr, "line\\n"); }\n',
     0),
    ("stderr allowed with pragma", "tools/n_main.cc",
     "// daisy-lint: allow(raw-stderr) usage text before logging exists\n"
     'int usage() { std::fprintf(stderr, "usage\\n"); return 2; }\n', 0),
    ("stderr in comment ignored", "src/x/m.cc",
     "// writes to std::cerr? no: the logger owns stderr\nint x;\n", 0),
    ("stderr not scoped to tests", "tests/e_test.cpp",
     '#include <cstdio>\nvoid f() { std::fprintf(stderr, "dbg\\n"); }\n',
     0),
    # --- raw-thread ---
    ("raw mutex flagged", "src/x/g.cc",
     "#include <mutex>\nstd::mutex mu;\n", 1),
    # One finding per offending line (not per occurrence).
    ("raw shared_mutex + lock flagged", "src/x/h.cc",
     "#include <shared_mutex>\nstd::shared_mutex mu;\n"
     "void f() { std::shared_lock<std::shared_mutex> l(mu); }\n", 2),
    ("raw thread flagged outside pool files", "src/x/i.cc",
     "#include <thread>\nvoid f() { std::thread t; t.join(); }\n", 1),
    ("thread allowed in pool file", "src/plan/plan_node.cc",
     "#include <thread>\nvoid f() { std::thread t; t.join(); }\n", 0),
    ("mutex NOT allowed in pool file", "src/plan/plan_node.cc",
     "#include <mutex>\nstd::mutex mu;\n", 1),
    ("wrapper header exempt", "src/common/mutex.h",
     "#include <mutex>\nstd::mutex mu;\nstd::condition_variable cv;\n", 0),
    # --- test-nondet ---
    ("random_device flagged in tests", "tests/b_test.cpp",
     "#include <random>\nstd::random_device rd;\n", 1),
    ("time(nullptr) seed flagged in tests", "tests/c_test.cpp",
     "#include <ctime>\nlong s = time(nullptr);\n", 1),
    ("fixed seed passes", "tests/d_test.cpp",
     "#include <random>\nstd::mt19937 rng(42);\n", 0),
    ("nondet not scoped to src", "src/x/j.cc",
     "#include <random>\nstd::random_device rd;\n", 0),
]


def run_case(name, rel, content, expected):
    tree = tempfile.mkdtemp(prefix="daisy_lint_test_")
    try:
        path = os.path.join(tree, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
        proc = subprocess.run(
            [sys.executable, SCRIPT, "--root", tree],
            capture_output=True, text=True)
        found = len([l for l in proc.stdout.splitlines() if l.strip()])
        want_rc = 0 if expected == 0 else 1
        if proc.returncode != want_rc or found != expected:
            print("FAIL: %s" % name)
            print("  expected %d finding(s) rc=%d, got %d rc=%d"
                  % (expected, want_rc, found, proc.returncode))
            for line in proc.stdout.splitlines():
                print("  | " + line)
            return False
        print("ok: %s" % name)
        return True
    finally:
        shutil.rmtree(tree, ignore_errors=True)


def main():
    failures = sum(0 if run_case(*case) else 1 for case in FIXTURES)
    if failures:
        print("%d case(s) failed" % failures, file=sys.stderr)
        return 1
    print("all %d cases passed" % len(FIXTURES))
    return 0


if __name__ == "__main__":
    sys.exit(main())
