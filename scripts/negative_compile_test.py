#!/usr/bin/env python3
"""Negative compile tests: prove the static contracts actually fire.

Each ``fail_*.cc`` fixture in tests/negative_compile must FAIL to compile
under the contract flags, with the expected diagnostic in the output;
``pass_*.cc`` fixtures must compile cleanly under the same flags (the
positive control that the flags are not rejecting everything).

Thread-safety fixtures only fire under clang (the annotations are no-ops
on GCC), so they are skipped — loudly — on other compilers. The
[[nodiscard]] fixture fires on every compiler.

Usage: negative_compile_test.py --compiler c++ --source-dir <repo-root>
"""

import argparse
import os
import subprocess
import sys

# fixture -> (needs_clang, regex that must appear in the diagnostics)
EXPECTATIONS = {
    "fail_guarded_by.cc": (True, "thread-safety|guarded_by|guarded by"),
    "fail_requires.cc": (True, "thread-safety|requires|calling function"),
    "fail_nodiscard_status.cc": (False, "unused-result|nodiscard|ignoring"),
}


def compiler_is_clang(compiler):
    try:
        proc = subprocess.run(
            [compiler, "-dM", "-E", "-x", "c++", os.devnull],
            capture_output=True, text=True)
    except OSError:
        return False
    return "__clang__" in proc.stdout


def compile_fixture(compiler, flags, path):
    cmd = [compiler] + flags + ["-fsyntax-only", path]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--compiler", default="c++")
    parser.add_argument("--source-dir", default=".")
    args = parser.parse_args(argv)

    fixture_dir = os.path.join(args.source_dir, "tests", "negative_compile")
    if not os.path.isdir(fixture_dir):
        print("no fixture dir: %s" % fixture_dir, file=sys.stderr)
        return 2

    is_clang = compiler_is_clang(args.compiler)
    flags = ["-std=c++17", "-Werror=unused-result",
             "-I", os.path.join(args.source_dir, "src")]
    if is_clang:
        flags += ["-Wthread-safety", "-Werror=thread-safety"]

    failures = 0
    names = sorted(os.listdir(fixture_dir))

    # Positive controls first: if these fail, every negative result below
    # is meaningless.
    for name in names:
        if not (name.startswith("pass_") and name.endswith(".cc")):
            continue
        rc, out = compile_fixture(args.compiler, flags,
                                  os.path.join(fixture_dir, name))
        if rc != 0:
            print("FAIL: %s should compile cleanly but did not:" % name)
            print(out)
            failures += 1
        else:
            print("ok: %s compiles (positive control)" % name)

    for name in names:
        if not (name.startswith("fail_") and name.endswith(".cc")):
            continue
        if name not in EXPECTATIONS:
            print("FAIL: %s has no entry in EXPECTATIONS" % name)
            failures += 1
            continue
        needs_clang, want_re = EXPECTATIONS[name]
        if needs_clang and not is_clang:
            print("skip: %s (thread-safety analysis needs clang; compiler "
                  "is not clang)" % name)
            continue
        rc, out = compile_fixture(args.compiler, flags,
                                  os.path.join(fixture_dir, name))
        if rc == 0:
            print("FAIL: %s compiled but must not — the contract did not "
                  "fire" % name)
            failures += 1
            continue
        import re
        if not re.search(want_re, out):
            print("FAIL: %s failed to compile (good) but without the "
                  "expected diagnostic /%s/:" % (name, want_re))
            print(out)
            failures += 1
            continue
        print("ok: %s fails to compile as asserted" % name)

    if failures:
        print("%d fixture expectation(s) failed" % failures, file=sys.stderr)
        return 1
    print("negative compile tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
