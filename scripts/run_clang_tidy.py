#!/usr/bin/env python3
"""clang-tidy wrapper with a committed suppression baseline.

Runs clang-tidy (config from .clang-tidy) over every C++ source in src/
and tools/, normalizes the findings to ``path:check-name: message`` (no
line numbers — they churn on every edit), and compares the set against
scripts/clang_tidy_baseline.txt:

  * a finding in the baseline      -> suppressed (legacy, tracked)
  * a finding NOT in the baseline  -> NEW, fails the run
  * a baseline entry not found     -> reported as fixed (shrink the file)

``--update-baseline`` rewrites the baseline from the current findings.
Requires a compile database: pass --build-dir pointing at a CMake build
configured with CMAKE_EXPORT_COMPILE_COMMANDS=ON.

Exit status: 0 = no new findings, 1 = new findings, 2 = setup error.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

FINDING_RE = re.compile(
    r"^(?P<path>[^:\s][^:]*):\d+:\d+: (?:warning|error): "
    r"(?P<msg>.*?) \[(?P<check>[a-z0-9.,-]+)\]$")


def list_sources(root):
    out = []
    for top in ("src", "tools"):
        for dirpath, _dirs, files in os.walk(os.path.join(root, top)):
            for name in sorted(files):
                if name.endswith(".cc"):
                    out.append(os.path.join(dirpath, name))
    return out


def normalize(root, line):
    m = FINDING_RE.match(line)
    if not m:
        return None
    path = os.path.relpath(m.group("path"), root).replace(os.sep, "/")
    if path.startswith(".."):  # system/third-party header
        return None
    return "%s:%s: %s" % (path, m.group("check"), m.group("msg"))


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", default=".")
    parser.add_argument("--build-dir", default="build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--baseline",
                        default=os.path.join(os.path.dirname(
                            os.path.abspath(__file__)),
                            "clang_tidy_baseline.txt"))
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("-j", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    if shutil.which(args.clang_tidy) is None:
        print("run_clang_tidy: %s not found on PATH" % args.clang_tidy,
              file=sys.stderr)
        return 2
    compdb = os.path.join(args.build_dir, "compile_commands.json")
    if not os.path.isfile(compdb):
        print("run_clang_tidy: no %s (configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)" % compdb,
              file=sys.stderr)
        return 2

    sources = list_sources(root)
    findings = set()
    # Chunk to keep command lines short; clang-tidy parallelizes per file
    # poorly, so shard the file list across processes ourselves.
    shards = [sources[i::args.j] for i in range(args.j)]
    procs = []
    for shard in shards:
        if not shard:
            continue
        procs.append(subprocess.Popen(
            [args.clang_tidy, "-p", args.build_dir, "--quiet"] + shard,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True))
    for proc in procs:
        out, _ = proc.communicate()
        for line in out.splitlines():
            norm = normalize(root, line)
            if norm:
                findings.add(norm)

    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as f:
            f.write("# clang-tidy suppression baseline — one normalized\n"
                    "# finding per line; regenerate with\n"
                    "# scripts/run_clang_tidy.py --update-baseline\n")
            for line in sorted(findings):
                f.write(line + "\n")
        print("baseline updated: %d finding(s)" % len(findings))
        return 0

    baseline = set()
    if os.path.isfile(args.baseline):
        with open(args.baseline, encoding="utf-8") as f:
            baseline = {l.strip() for l in f
                        if l.strip() and not l.startswith("#")}

    new = sorted(findings - baseline)
    fixed = sorted(baseline - findings)
    for line in fixed:
        print("fixed (remove from baseline): %s" % line)
    for line in new:
        print("NEW: %s" % line)
    print("%d finding(s): %d baselined, %d new, %d fixed"
          % (len(findings), len(findings & baseline), len(new), len(fixed)))
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
