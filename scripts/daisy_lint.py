#!/usr/bin/env python3
"""daisy_lint: fast source linter for invariants the compiler cannot see.

Rules (each scoped to the directories where the invariant applies):

  raw-io      [src/, tools/]   No raw file I/O — ``::open``/``::write``/
              ``::fsync``/``::rename``/``::unlink``, ``fopen``-family, or
              std file streams — outside src/persist/env.cc. All durable
              file operations route through persist::Env so fault
              injection, crash tests, and the health machine see them.

  raw-stderr  [src/, tools/]   No direct stderr output — ``std::cerr`` or
              ``fprintf(stderr, ...)`` — outside src/common/logger.cc.
              Diagnostics go through the structured logger
              (common/logger.h) so every line is JSON with a timestamp,
              level, and component; tool mains may pragma-allow usage/
              flag-parse text that must print before logging makes sense.

  raw-thread  [src/, tools/]   No ``std::mutex`` / ``std::shared_mutex`` /
              ``std::condition_variable`` / ``std::*_lock`` outside
              src/common/mutex.h — locking goes through the annotated
              daisy::Mutex wrappers so clang's -Wthread-safety can check
              the protocol. ``std::thread`` is additionally confined to
              the approved worker-pool files.

  test-nondet [tests/]         No nondeterminism sources on test golden
              paths: ``std::random_device``, ``srand``/``rand``,
              ``time(nullptr)``. Tests seed their PRNGs with constants so
              failures replay.

A finding can be suppressed with an inline pragma on the same line or the
line directly above, with a mandatory reason:

    // daisy-lint: allow(raw-io) socket file cleanup, not a data file

Exit status: 0 = clean, 1 = findings, 2 = usage/configuration error.
Run as ``daisy_lint.py --root <repo>``; CTest registers it over the tree.
"""

import argparse
import os
import re
import sys

# Per-rule whole-file exemptions (repo-relative, '/'-separated).
RAW_IO_EXEMPT = {
    "src/persist/env.cc",
}
RAW_STDERR_EXEMPT = {
    "src/common/logger.cc",  # the one sanctioned stderr writer
}
RAW_THREAD_EXEMPT = {
    "src/common/mutex.h",
    "src/common/thread_annotations.h",
}
# std::thread (but not raw mutexes) is allowed in the approved pool files.
THREAD_POOL_FILES = {
    "src/plan/plan_node.cc",     # morsel worker pool
    "src/detect/theta_join.cc",  # DetectAll partition scan pool
    "src/server/server.cc",      # accept/worker/watchdog threads
    "src/server/server.h",
}

SOURCE_EXTS = (".cc", ".h", ".cpp", ".hpp")

RULES = [
    {
        "name": "raw-io",
        "dirs": ("src", "tools"),
        "exempt": RAW_IO_EXEMPT,
        "patterns": [
            (re.compile(r"::(open|write|fsync|rename|unlink)\s*\("),
             "raw POSIX file I/O; route it through persist::Env"),
            (re.compile(r"\bf(open|write|sync)\s*\("),
             "raw stdio file I/O; route it through persist::Env"),
            (re.compile(r"\bstd::[io]?fstream\b"),
             "raw file stream; route it through persist::Env"),
        ],
    },
    {
        "name": "raw-stderr",
        "dirs": ("src", "tools"),
        "exempt": RAW_STDERR_EXEMPT,
        "patterns": [
            (re.compile(r"\bstd::cerr\b"),
             "direct stderr output; use the structured logger "
             "(common/logger.h)"),
            (re.compile(r"\bfprintf\s*\(\s*stderr\b"),
             "direct stderr output; use the structured logger "
             "(common/logger.h)"),
        ],
    },
    {
        "name": "raw-thread",
        "dirs": ("src", "tools"),
        "exempt": RAW_THREAD_EXEMPT,
        "patterns": [
            (re.compile(r"\bstd::(mutex|shared_mutex|recursive_mutex|"
                        r"condition_variable(_any)?|lock_guard|unique_lock|"
                        r"shared_lock|scoped_lock)\b"),
             "raw locking primitive; use the annotated wrappers in "
             "common/mutex.h"),
        ],
    },
    {
        "name": "raw-thread",  # std::thread: separate exemption set
        "dirs": ("src", "tools"),
        "exempt": RAW_THREAD_EXEMPT | THREAD_POOL_FILES,
        "patterns": [
            (re.compile(r"\bstd::thread\b"),
             "std::thread outside the approved worker-pool files"),
        ],
    },
    {
        "name": "test-nondet",
        "dirs": ("tests",),
        "exempt": set(),
        "patterns": [
            (re.compile(r"\bstd::random_device\b"),
             "nondeterministic seed; use a fixed constant"),
            (re.compile(r"\bs?rand\s*\("),
             "C PRNG; use a fixed-seed <random> engine"),
            (re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)"),
             "wall-clock seed; use a fixed constant"),
        ],
    },
]

ALLOW_RE = re.compile(r"daisy-lint:\s*allow\(([a-z-]+)\)\s*(\S.*)?$")


def strip_code(text):
    """Returns `text` with comments and string/char literals blanked out
    (replaced by spaces, newlines preserved) so patterns only match code."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def allowances(raw_lines):
    """Maps 1-based line number -> set of rule names allowed there.

    A pragma covers its own line and the next line (the idiomatic
    comment-above placement). A pragma without a reason is itself a
    finding, returned as the second element.
    """
    allowed = {}
    bad_pragmas = []
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rule, reason = m.group(1), m.group(2)
        if not reason:
            bad_pragmas.append(
                (idx, "allow(%s) pragma without a reason" % rule))
            continue
        allowed.setdefault(idx, set()).add(rule)
        allowed.setdefault(idx + 1, set()).add(rule)
    return allowed, bad_pragmas


def lint_file(root, rel):
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [(rel, 0, "lint", "unreadable file: %s" % e)]

    raw_lines = text.splitlines()
    code_lines = strip_code(text).splitlines()
    allowed, bad_pragmas = allowances(raw_lines)

    findings = [(rel, ln, "lint", msg) for ln, msg in bad_pragmas]
    top_dir = rel.split("/", 1)[0]
    for rule in RULES:
        if top_dir not in rule["dirs"] or rel in rule["exempt"]:
            continue
        for idx, line in enumerate(code_lines, start=1):
            for pattern, msg in rule["patterns"]:
                if not pattern.search(line):
                    continue
                if rule["name"] in allowed.get(idx, ()):
                    continue
                findings.append((rel, idx, rule["name"], msg))
    return findings


def iter_sources(root):
    for top in ("src", "tools", "tests"):
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, root).replace(os.sep, "/")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root to lint (default: cwd)")
    parser.add_argument("files", nargs="*",
                        help="repo-relative files to lint (default: all)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print("daisy_lint: no such directory: %s" % root, file=sys.stderr)
        return 2

    rels = args.files or list(iter_sources(root))
    findings = []
    for rel in rels:
        findings.extend(lint_file(root, rel.replace(os.sep, "/")))

    for rel, line, rule, msg in findings:
        print("%s:%d: [%s] %s" % (rel, line, rule, msg))
    if findings:
        print("daisy_lint: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
