#!/usr/bin/env python3
"""check_metrics_format: strict validator for the Prometheus text
exposition page daisyd serves (the Metrics wire message / daisy-cli
``.metrics`` / ``daisyd --metrics-dump``).

Checks, line by line:

  * ``# TYPE <family> <counter|gauge|histogram>`` appears before any
    sample of the family, at most once per family;
  * ``# HELP`` lines name a family that gets a TYPE;
  * sample names are valid metric identifiers, labels parse as
    ``key="value"`` pairs, values are integers (the registry is integral);
  * counter samples are non-negative;
  * every histogram family emits cumulative ``_bucket{le=...}`` series
    ending in ``le="+Inf"``, plus ``_sum`` and ``_count``, with
    non-decreasing bucket counts and ``_count`` equal to the +Inf bucket.

``--require FAM[,FAM...]`` additionally demands at least one family per
given prefix — CI uses ``--require daisy_engine,daisy_persist,daisy_server``
to prove the scrape crosses all three layers.

Usage: check_metrics_format.py [PAGE_FILE] [--require PREFIXES]
(reads stdin when no file is given). Exit 0 = valid, 1 = findings,
2 = usage error.
"""

import argparse
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>-?\d+)$")
LABEL_RE = re.compile(r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
VALID_TYPES = ("counter", "gauge", "histogram")


def base_family(sample_name, types):
    """Maps a histogram sample name back to its family: the _bucket/_sum/
    _count suffixes belong to the declared histogram family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            family = sample_name[: -len(suffix)]
            if types.get(family) == "histogram":
                return family
    return sample_name


def parse_labels(labels):
    """Splits 'a="b",c="d"' into pairs; returns None on malformed input."""
    out = {}
    # Split on commas not inside quotes (values are escaped strings).
    parts, depth, cur = [], False, ""
    i = 0
    while i < len(labels):
        c = labels[i]
        if c == '"' and (i == 0 or labels[i - 1] != "\\"):
            depth = not depth
        if c == "," and not depth:
            parts.append(cur)
            cur = ""
        else:
            cur += c
        i += 1
    if cur:
        parts.append(cur)
    for part in parts:
        if not LABEL_RE.match(part):
            return None
        key, value = part.split("=", 1)
        out[key] = value[1:-1]
    return out


def validate(text):
    """Returns a list of finding strings (empty = valid page)."""
    findings = []
    types = {}          # family -> declared type
    helps = set()       # families with a HELP line
    seen_samples = {}   # family -> list of (labels_dict, int value)

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            findings.append("line %d: blank line" % lineno)
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            family = rest.split(" ", 1)[0]
            if not NAME_RE.match(family):
                findings.append("line %d: bad HELP family %r"
                                % (lineno, family))
            helps.add(family)
            continue
        if line.startswith("# TYPE "):
            fields = line[len("# TYPE "):].split(" ")
            if len(fields) != 2 or not NAME_RE.match(fields[0]):
                findings.append("line %d: malformed TYPE line" % lineno)
                continue
            family, kind = fields
            if kind not in VALID_TYPES:
                findings.append("line %d: unknown type %r" % (lineno, kind))
            if family in types:
                findings.append("line %d: duplicate TYPE for %s"
                                % (lineno, family))
            if family in seen_samples:
                findings.append("line %d: TYPE for %s after its samples"
                                % (lineno, family))
            types[family] = kind
            continue
        if line.startswith("#"):
            findings.append("line %d: unknown comment form" % lineno)
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            findings.append("line %d: malformed sample: %r" % (lineno, line))
            continue
        name, labels, value = m.group("name"), m.group("labels"), int(
            m.group("value"))
        label_map = {} if labels is None else parse_labels(labels)
        if label_map is None:
            findings.append("line %d: malformed labels: %r"
                            % (lineno, labels))
            continue
        family = base_family(name, types)
        if family not in types:
            findings.append("line %d: sample %s has no preceding TYPE"
                            % (lineno, name))
            continue
        if types[family] == "counter" and value < 0:
            findings.append("line %d: negative counter %s" % (lineno, name))
        seen_samples.setdefault(family, []).append((name, label_map, value))

    for family in helps:
        if family not in types:
            findings.append("HELP without TYPE for %s" % family)

    # Histogram shape: per labelled series (the le label aside), cumulative
    # buckets up to +Inf plus exactly one _sum and one _count.
    for family, kind in types.items():
        if kind != "histogram":
            continue
        samples = seen_samples.get(family, [])

        def series_key(label_map):
            return tuple(sorted((k, v) for k, v in label_map.items()
                                if k != "le"))

        series = {}
        for (n, l, v) in samples:
            entry = series.setdefault(series_key(l),
                                      {"buckets": [], "sums": [],
                                       "counts": []})
            if n == family + "_bucket":
                entry["buckets"].append((l, v))
            elif n == family + "_sum":
                entry["sums"].append(v)
            elif n == family + "_count":
                entry["counts"].append(v)
        if not series:
            findings.append("histogram %s has no samples" % family)
            continue
        for key, entry in series.items():
            where = "%s{%s}" % (family,
                                ",".join("%s=%r" % kv for kv in key))
            if not entry["buckets"]:
                findings.append("histogram %s has no _bucket series" % where)
                continue
            if len(entry["sums"]) != 1 or len(entry["counts"]) != 1:
                findings.append("histogram %s needs exactly one _sum and "
                                "one _count" % where)
                continue
            les = [l.get("le") for (l, v) in entry["buckets"]]
            if any(le is None for le in les):
                findings.append("histogram %s bucket missing le label"
                                % where)
                continue
            if les[-1] != "+Inf":
                findings.append("histogram %s buckets do not end at "
                                "le=\"+Inf\"" % where)
            values = [v for (l, v) in entry["buckets"]]
            if any(lo > hi for lo, hi in zip(values, values[1:])):
                findings.append("histogram %s buckets are not cumulative"
                                % where)
            if entry["counts"][0] != values[-1]:
                findings.append("histogram %s _count (%d) != +Inf bucket "
                                "(%d)" % (where, entry["counts"][0],
                                          values[-1]))

    return findings, types


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("page", nargs="?",
                        help="exposition page file (default: stdin)")
    parser.add_argument("--require", default="",
                        help="comma-separated family prefixes that must "
                             "each match at least one family")
    args = parser.parse_args(argv)

    if args.page:
        try:
            with open(args.page, encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print("check_metrics_format: %s" % e, file=sys.stderr)
            return 2
    else:
        text = sys.stdin.read()

    if not text:
        print("check_metrics_format: empty page", file=sys.stderr)
        return 1

    findings, types = validate(text)
    for prefix in filter(None, args.require.split(",")):
        if not any(family.startswith(prefix) for family in types):
            findings.append("required family prefix %r matches nothing"
                            % prefix)

    for finding in findings:
        print(finding)
    if findings:
        print("check_metrics_format: %d finding(s)" % len(findings),
              file=sys.stderr)
        return 1
    print("check_metrics_format: ok (%d families)" % len(types))
    return 0


if __name__ == "__main__":
    sys.exit(main())
