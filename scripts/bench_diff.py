#!/usr/bin/env python3
"""Compare a bench run's BENCH_*.json against a committed baseline.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [--threshold 0.25]
                  [--metrics wall_ms,...]

Both files use the BenchJsonWriter shape (bench/bench_util.h):

    {"bench": "...", "results": [
        {"name": ..., "wall_ms": ..., "counters": {...}, "config": {...}}]}

Results are matched by name. For every time-like metric — `wall_ms` plus
any counter ending in `_ms` — the run regresses when

    current > baseline * (1 + threshold)

(lower is better; the default threshold is 25%). Counters that are not
time-like (pair counts, speedup ratios) are reported but do not gate
unless named in --gate, so a machine-speed difference between the
baseline host and CI cannot fail the diff through a derived ratio twice;
deterministic work counters (e.g. pairs checked) are good --gate
candidates precisely because they are machine-independent. A baseline
result missing from the current run fails, as does a baseline counter
missing from the current run (reported as "counter missing from current
run", never a traceback); a new result in the current run is reported
and passes (refresh the baseline to start gating it).

Zero baselines are legitimate (e.g. detect_ops=0 on a warm-recovery
leg): base == 0 and cur == 0 passes with ratio 1.0, and base == 0 with
cur > 0 is reported as a "new metric" informational line, not a gated
regression — a zero baseline can never fail the diff through an
infinite ratio.

Exit status: 0 = no regression, 1 = regression or shape error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    if not isinstance(doc, dict) or not isinstance(doc.get("results"), list):
        sys.exit(f"bench_diff: {path} is not a BenchJsonWriter file")
    by_name = {}
    for result in doc["results"]:
        if not isinstance(result, dict) or "name" not in result:
            sys.exit(f"bench_diff: {path} has a result without a name")
        by_name[result["name"]] = result
    return doc.get("bench", "?"), by_name


def metrics_of(result, selected, gated):
    """Yield (metric, value, gates) for one result."""
    out = [("wall_ms", float(result.get("wall_ms", 0.0)), True)]
    for key, value in sorted(result.get("counters", {}).items()):
        out.append((key, float(value), key.endswith("_ms") or key in gated))
    if selected is not None:
        out = [(k, v, g) for k, v, g in out if k in selected]
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed slowdown fraction (default 0.25)")
    parser.add_argument("--metrics", default=None,
                        help="comma-separated metric allowlist "
                             "(default: every time-like metric)")
    parser.add_argument("--gate", default=None,
                        help="comma-separated extra counters to gate "
                             "(lower is better), e.g. deterministic "
                             "work counts")
    args = parser.parse_args()

    selected = None
    if args.metrics is not None:
        selected = {m.strip() for m in args.metrics.split(",") if m.strip()}
    gated = set()
    if args.gate is not None:
        gated = {m.strip() for m in args.gate.split(",") if m.strip()}

    base_bench, base = load(args.baseline)
    cur_bench, cur = load(args.current)
    if base_bench != cur_bench:
        print(f"bench_diff: note: comparing bench '{base_bench}' "
              f"against '{cur_bench}'")

    regressions = []
    print(f"{'result':<24} {'metric':<20} {'baseline':>12} {'current':>12} "
          f"{'ratio':>8}  gate")
    for name, base_result in sorted(base.items()):
        cur_result = cur.get(name)
        if cur_result is None:
            regressions.append(f"{name}: missing from current run")
            continue
        for metric, base_value, gates in metrics_of(base_result, selected,
                                                    gated):
            cur_counters = cur_result.get("counters")
            if not isinstance(cur_counters, dict):
                cur_counters = {}
            cur_value = None
            if metric == "wall_ms":
                cur_value = float(cur_result.get("wall_ms", 0.0))
            elif metric in cur_counters:
                try:
                    cur_value = float(cur_counters[metric])
                except (TypeError, ValueError):
                    cur_value = None
            if cur_value is None:
                regressions.append(
                    f"{name}/{metric}: counter missing from current run")
                print(f"{name:<24} {metric:<20} {base_value:>12.3f} "
                      f"{'-':>12} {'-':>8}  MISSING")
                continue
            if base_value == 0.0:
                # A zero baseline is legitimate (e.g. detect_ops=0 on a
                # warm-recovery leg); it never gates. 0 -> 0 is a clean
                # pass, 0 -> nonzero means the metric newly appeared.
                if cur_value == 0.0:
                    print(f"{name:<24} {metric:<20} {base_value:>12.3f} "
                          f"{cur_value:>12.3f} {1.0:>7.2f}x  "
                          f"{'time' if gates else 'info'}")
                else:
                    print(f"{name:<24} {metric:<20} {base_value:>12.3f} "
                          f"{cur_value:>12.3f} {'new':>8}  info "
                          f"(new metric, not gated)")
                continue
            ratio = cur_value / base_value
            bad = gates and cur_value > base_value * (1.0 + args.threshold)
            print(f"{name:<24} {metric:<20} {base_value:>12.3f} "
                  f"{cur_value:>12.3f} {ratio:>7.2f}x  "
                  f"{'FAIL' if bad else ('time' if gates else 'info')}")
            if bad:
                regressions.append(
                    f"{name}/{metric}: {base_value:.3f} -> {cur_value:.3f} "
                    f"({(ratio - 1.0) * 100:.0f}% slower, "
                    f"threshold {args.threshold * 100:.0f}%)")
    for name in sorted(set(cur) - set(base)):
        print(f"{name:<24} (new result, not gated)")

    if regressions:
        print("\nbench_diff: REGRESSIONS:")
        for line in regressions:
            print(f"  - {line}")
        return 1
    print("\nbench_diff: OK (no time-like metric regressed "
          f">{args.threshold * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
