#!/usr/bin/env python3
"""Unit tests for bench_diff.py, run as a subprocess the way CI does.

Pins the diff semantics the CI gate depends on:
  - zero baselines never fail through an infinite ratio
    (base == 0, cur == 0 passes; base == 0, cur > 0 is "new metric" info)
  - a counter present in the baseline but missing from the current run is
    a clear "counter missing from current run" failure, not a traceback
  - ordinary regressions beyond the threshold still fail
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_diff.py")


def write_bench(dirname, filename, results):
    path = os.path.join(dirname, filename)
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"bench": "t", "results": results}, f)
    return path


def result(name, wall_ms=1.0, counters=None):
    return {"name": name, "wall_ms": wall_ms, "counters": counters or {},
            "config": {}}


def run_diff(base, cur, *extra):
    proc = subprocess.run(
        [sys.executable, SCRIPT, base, cur, *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return proc.returncode, proc.stdout


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.dir.cleanup()

    def diff(self, base_results, cur_results, *extra):
        base = write_bench(self.dir.name, "base.json", base_results)
        cur = write_bench(self.dir.name, "cur.json", cur_results)
        return run_diff(base, cur, *extra)

    def test_identical_runs_pass(self):
        results = [result("leg", 10.0, {"pairs": 5})]
        code, out = self.diff(results, results, "--gate", "pairs")
        self.assertEqual(code, 0, out)

    def test_zero_baseline_zero_current_passes(self):
        code, out = self.diff(
            [result("warm", 1.0, {"detect_ops": 0})],
            [result("warm", 1.0, {"detect_ops": 0})],
            "--gate", "detect_ops")
        self.assertEqual(code, 0, out)
        self.assertNotIn("infx", out)

    def test_zero_baseline_nonzero_current_is_new_metric_info(self):
        code, out = self.diff(
            [result("warm", 1.0, {"detect_ops": 0})],
            [result("warm", 1.0, {"detect_ops": 40})],
            "--gate", "detect_ops")
        self.assertEqual(code, 0, out)
        self.assertIn("new metric", out)
        self.assertNotIn("infx", out)
        self.assertNotIn("REGRESSIONS", out)

    def test_zero_baseline_time_metric_does_not_gate(self):
        code, out = self.diff(
            [result("leg", 0.0)],
            [result("leg", 123.0)])
        self.assertEqual(code, 0, out)
        self.assertNotIn("infx", out)

    def test_missing_counter_is_clear_failure_not_traceback(self):
        code, out = self.diff(
            [result("leg", 1.0, {"fsync_ms": 2.0})],
            [result("leg", 1.0, {})])
        self.assertEqual(code, 1, out)
        self.assertIn("counter missing from current run", out)
        self.assertNotIn("Traceback", out)
        self.assertNotIn("KeyError", out)

    def test_missing_counters_dict_is_clear_failure(self):
        cur = [{"name": "leg", "wall_ms": 1.0}]  # no "counters" key at all
        code, out = self.diff(
            [result("leg", 1.0, {"fsync_ms": 2.0})], cur)
        self.assertEqual(code, 1, out)
        self.assertIn("counter missing from current run", out)
        self.assertNotIn("Traceback", out)

    def test_missing_result_still_fails(self):
        code, out = self.diff(
            [result("leg")], [result("other")])
        self.assertEqual(code, 1, out)
        self.assertIn("missing from current run", out)

    def test_time_regression_beyond_threshold_fails(self):
        code, out = self.diff(
            [result("leg", 10.0)], [result("leg", 20.0)],
            "--threshold", "0.25")
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSIONS", out)

    def test_gated_counter_regression_fails(self):
        code, out = self.diff(
            [result("leg", 1.0, {"pairs": 100})],
            [result("leg", 1.0, {"pairs": 200})],
            "--gate", "pairs", "--threshold", "0.05")
        self.assertEqual(code, 1, out)
        self.assertIn("leg/pairs", out)

    def test_ungated_counter_growth_is_info_only(self):
        code, out = self.diff(
            [result("leg", 1.0, {"speedup": 1.0})],
            [result("leg", 1.0, {"speedup": 9.0})])
        self.assertEqual(code, 0, out)

    def test_new_result_in_current_passes(self):
        code, out = self.diff(
            [result("leg")], [result("leg"), result("extra")])
        self.assertEqual(code, 0, out)
        self.assertIn("new result", out)

    def test_result_without_name_is_shape_error(self):
        base = write_bench(self.dir.name, "base.json", [result("leg")])
        cur = os.path.join(self.dir.name, "cur.json")
        with open(cur, "w", encoding="utf-8") as f:
            json.dump({"bench": "t", "results": [{"wall_ms": 1.0}]}, f)
        code, out = run_diff(base, cur)
        self.assertNotEqual(code, 0, out)
        self.assertNotIn("Traceback", out)


if __name__ == "__main__":
    unittest.main()
