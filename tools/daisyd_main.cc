// daisyd — the Daisy network service. Hosts one DaisyEngine behind the
// socket server (src/server/): sessions speak the CRC-framed wire
// protocol, reads scale under the engine's shared lock, writes commit
// through the group-commit WAL before they are acked.
//
// Usage:
//   daisyd --listen unix:/tmp/daisy.sock [--listen tcp:127.0.0.1:7437]
//          [--data-dir DIR]
//          [--table NAME:col:type,col:type]... [--csv NAME=FILE]...
//          [--rule "TEXT@TABLE"]...
//          [--workers N] [--backlog N]
//          [--metrics-dump PATH]
//
// --metrics-dump writes the final Prometheus text exposition page of the
// process metrics registry to PATH on clean shutdown (SIGTERM/SIGINT) —
// the scrape-vs-dump lifecycle of docs/architecture.md: live scraping via
// the Metrics wire message, a last page for post-mortems via the dump.
//
// Startup resolves the engine in this order:
//   1. --data-dir holding a snapshot  -> DaisyEngine::Open (warm recovery:
//      coverage, repairs and provenance are restored, the WAL replayed).
//   2. otherwise                      -> bootstrap from --table/--csv/--rule,
//      then EnablePersistence(--data-dir) when a data dir was given.
//
// Environment overrides (DAISY_QUERY_THREADS, DAISY_DETECT_THREADS,
// DAISY_OPTIMIZER, DAISY_GROUP_COMMIT, ...) apply on top of defaults;
// malformed values are ignored with a structured-log warning.
//
// Once serving, prints exactly one readiness line to stdout:
//   daisyd ready unix=<path> tcp_port=<port|-1>
// (the multi-process smoke test waits for it), then blocks until
// SIGTERM/SIGINT and shuts down cleanly — in-flight queries are cut via
// cancel-on-disconnect, acked writes are already fsync-durable.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "clean/daisy_engine.h"
#include "common/csv.h"
#include "common/logger.h"
#include "common/metrics.h"
#include "persist/io_util.h"
#include "server/server.h"

namespace {

using daisy::ConstraintSet;
using daisy::Database;
using daisy::DaisyEngine;
using daisy::DaisyOptions;
using daisy::Result;
using daisy::Schema;
using daisy::Status;
using daisy::Table;
using daisy::Value;
using daisy::ValueType;
using daisy::server::DaisyServer;
using daisy::server::ServerOptions;

volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

int Usage(const char* argv0) {
  // daisy-lint: allow(raw-stderr) CLI usage text, not engine logging
  std::fprintf(
      stderr,
      "usage: %s --listen unix:PATH|tcp:HOST:PORT [--listen ...]\n"
      "          [--data-dir DIR] [--table NAME:col:type,...]\n"
      "          [--csv NAME=FILE] [--rule \"TEXT@TABLE\"]\n"
      "          [--workers N] [--backlog N] [--metrics-dump PATH]\n",
      argv0);
  return 2;
}

struct TableSpec {
  std::string name;
  Schema schema;
};

Result<ValueType> ParseType(const std::string& t) {
  if (t == "int") return ValueType::kInt;
  if (t == "double") return ValueType::kDouble;
  if (t == "string") return ValueType::kString;
  return Status::InvalidArgument("unknown column type '" + t +
                                 "' (want int|double|string)");
}

/// "cities:zip:int,city:string" -> name + schema.
Result<TableSpec> ParseTableSpec(const std::string& spec) {
  const size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0) {
    return Status::InvalidArgument("bad --table spec: " + spec);
  }
  TableSpec out;
  out.name = spec.substr(0, colon);
  std::vector<daisy::Column> columns;
  std::string rest = spec.substr(colon + 1);
  size_t start = 0;
  while (start <= rest.size()) {
    size_t comma = rest.find(',', start);
    if (comma == std::string::npos) comma = rest.size();
    const std::string field = rest.substr(start, comma - start);
    const size_t sep = field.find(':');
    if (sep == std::string::npos || sep == 0 || sep + 1 >= field.size()) {
      return Status::InvalidArgument("bad column '" + field +
                                     "' in --table spec (want name:type)");
    }
    daisy::Column col;
    col.name = field.substr(0, sep);
    auto type = ParseType(field.substr(sep + 1));
    if (!type.ok()) return type.status();
    col.type = type.value();
    columns.push_back(std::move(col));
    start = comma + 1;
  }
  if (columns.empty()) {
    return Status::InvalidArgument("--table spec has no columns: " + spec);
  }
  out.schema = Schema(std::move(columns));
  return out;
}

Result<Value> CoerceField(const std::string& field, ValueType type) {
  switch (type) {
    case ValueType::kInt: {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(field.c_str(), &end, 10);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::ParseError("not an int: '" + field + "'");
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::ParseError("not a double: '" + field + "'");
      }
      return Value(v);
    }
    default:
      return Value(field);
  }
}

Status LoadCsvInto(Table* table, const std::string& path) {
  DAISY_ASSIGN_OR_RETURN(auto rows, daisy::ReadCsvFile(path));
  for (const std::vector<std::string>& fields : rows) {
    if (fields.size() != table->schema().num_columns()) {
      return Status::InvalidArgument(
          path + ": row has " + std::to_string(fields.size()) +
          " fields, schema has " +
          std::to_string(table->schema().num_columns()));
    }
    std::vector<Value> values;
    values.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      DAISY_ASSIGN_OR_RETURN(
          Value v, CoerceField(fields[c], table->schema().column(c).type));
      values.push_back(std::move(v));
    }
    DAISY_RETURN_IF_ERROR(table->AppendRow(std::move(values)));
  }
  return Status::OK();
}

bool DirHasSnapshot(const std::string& dir) {
  Result<std::vector<std::string>> entries = daisy::persist::ListDirectory(dir);
  if (!entries.ok()) return false;
  for (const std::string& name : entries.value()) {
    if (name.rfind("snapshot-", 0) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions server_options;
  server_options.worker_threads = 8;
  std::string data_dir;
  std::string metrics_dump_path;
  std::vector<std::string> table_specs;
  std::vector<std::pair<std::string, std::string>> csv_specs;  // table, file
  std::vector<std::string> rule_specs;                         // text@table

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--listen") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      const std::string spec = v;
      if (spec.rfind("unix:", 0) == 0) {
        server_options.unix_path = spec.substr(5);
      } else if (spec.rfind("tcp:", 0) == 0) {
        const std::string hostport = spec.substr(4);
        const size_t colon = hostport.rfind(':');
        if (colon == std::string::npos) return Usage(argv[0]);
        server_options.tcp_host = hostport.substr(0, colon);
        server_options.tcp_port = std::atoi(hostport.c_str() + colon + 1);
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--data-dir") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      data_dir = v;
    } else if (arg == "--table") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      table_specs.push_back(v);
    } else if (arg == "--csv") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      const std::string spec = v;
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) return Usage(argv[0]);
      csv_specs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--rule") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      rule_specs.push_back(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      server_options.worker_threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--backlog") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      server_options.accept_backlog = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--metrics-dump") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      metrics_dump_path = v;
    } else {
      // daisy-lint: allow(raw-stderr) flag-parse diagnostic before logger use
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (server_options.unix_path.empty() && server_options.tcp_host.empty()) {
    // daisy-lint: allow(raw-stderr) flag-parse diagnostic before logger use
    std::fprintf(stderr, "at least one --listen is required\n");
    return Usage(argv[0]);
  }

  DaisyOptions options;
  daisy::ApplyEnvOverrides(&options);

  Database db;
  std::unique_ptr<DaisyEngine> owned_engine;
  DaisyEngine* engine = nullptr;

  if (!data_dir.empty() && DirHasSnapshot(data_dir)) {
    // Warm recovery: snapshot + WAL replay restore the full cleaning
    // investment of the previous run.
    Result<std::unique_ptr<DaisyEngine>> opened =
        DaisyEngine::Open(data_dir, &db, options);
    if (!opened.ok()) {
      daisy::LogError("daisyd", "recovery failed",
                      {{"data_dir", data_dir},
                       {"status", opened.status().ToString()}});
      return 1;
    }
    owned_engine = std::move(opened).value();
    engine = owned_engine.get();
    daisy::LogInfo("daisyd", "warm recovery complete",
                   {{"data_dir", data_dir}});
  } else {
    for (const std::string& spec : table_specs) {
      Result<TableSpec> parsed = ParseTableSpec(spec);
      if (!parsed.ok()) {
        daisy::LogError("daisyd", "bad --table spec",
                        {{"status", parsed.status().ToString()}});
        return 1;
      }
      Table table(parsed.value().name, parsed.value().schema);
      for (const auto& csv : csv_specs) {
        if (csv.first != parsed.value().name) continue;
        if (Status st = LoadCsvInto(&table, csv.second); !st.ok()) {
          daisy::LogError("daisyd", "CSV load failed",
                          {{"file", csv.second},
                           {"status", st.ToString()}});
          return 1;
        }
      }
      if (Status st = db.AddTable(std::move(table)); !st.ok()) {
        daisy::LogError("daisyd", "adding table failed",
                        {{"status", st.ToString()}});
        return 1;
      }
    }
    ConstraintSet rules;
    for (const std::string& spec : rule_specs) {
      const size_t at = spec.rfind('@');
      if (at == std::string::npos) {
        daisy::LogError("daisyd", "--rule wants \"TEXT@TABLE\"",
                        {{"spec", spec}});
        return 1;
      }
      const std::string text = spec.substr(0, at);
      const std::string table_name = spec.substr(at + 1);
      Result<const Table*> table =
          static_cast<const Database&>(db).GetTable(table_name);
      if (!table.ok()) {
        daisy::LogError("daisyd", "rule table unknown",
                        {{"table", table_name}});
        return 1;
      }
      if (Status st =
              rules.AddFromText(text, table_name, table.value()->schema());
          !st.ok()) {
        daisy::LogError("daisyd", "adding rule failed",
                        {{"status", st.ToString()}});
        return 1;
      }
    }
    owned_engine = std::make_unique<DaisyEngine>(&db, std::move(rules),
                                                 options);
    engine = owned_engine.get();
    if (Status st = engine->Prepare(); !st.ok()) {
      daisy::LogError("daisyd", "prepare failed",
                      {{"status", st.ToString()}});
      return 1;
    }
    if (!data_dir.empty()) {
      if (Status st = engine->EnablePersistence(data_dir); !st.ok()) {
        daisy::LogError("daisyd", "enabling persistence failed",
                        {{"data_dir", data_dir},
                         {"status", st.ToString()}});
        return 1;
      }
    }
  }

  DaisyServer server(engine, server_options);
  if (Status st = server.Start(); !st.ok()) {
    daisy::LogError("daisyd", "server start failed",
                    {{"status", st.ToString()}});
    return 1;
  }

  std::signal(SIGTERM, HandleStop);
  std::signal(SIGINT, HandleStop);
  std::signal(SIGPIPE, SIG_IGN);

  std::printf("daisyd ready unix=%s tcp_port=%d\n",
              server_options.unix_path.empty()
                  ? "-"
                  : server_options.unix_path.c_str(),
              server.tcp_port());
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  daisy::LogInfo(
      "daisyd", "shutting down",
      {{"sessions_served", std::to_string(server.sessions_served())}});
  server.Stop();

  if (!metrics_dump_path.empty()) {
    const std::string page = daisy::MetricsRegistry::Global().RenderPrometheus();
    if (Status st = daisy::persist::WriteFileAtomic(metrics_dump_path, page);
        !st.ok()) {
      daisy::LogError("daisyd", "metrics dump failed",
                      {{"path", metrics_dump_path},
                       {"status", st.ToString()}});
      return 1;
    }
    daisy::LogInfo("daisyd", "metrics dumped",
                   {{"path", metrics_dump_path}});
  }
  return 0;
}
