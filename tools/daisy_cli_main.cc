// daisy-cli — interactive / one-shot client for daisyd.
//
// Usage:
//   daisy-cli --connect unix:/tmp/daisy.sock [-e "SELECT ..."]
//   daisy-cli --connect tcp:127.0.0.1:7437             (REPL on stdin)
//
// One statement per line. Plain SQL runs as a streamed query; dot-commands
// cover the rest of the protocol:
//   .schema               table catalog
//   .health               engine health machine state
//   .metrics              Prometheus text page from the server's registry
//   .analyze SELECT ...   remote EXPLAIN ANALYZE
//   .append TABLE v1,v2   ingest one row (fields coerced by column type)
//   .delete TABLE id,...  tombstone rows by id
//   .cleanall             clean every remaining dirty tuple
//   .checkpoint           snapshot + WAL rotation
//   .timeout MS           per-query timeout for following queries (-1 off)
//   .limit N              per-query row limit (0 off)
//   .quit
//
// Exit status: 0 on success; 1 when a statement failed (one-shot mode) or
// the connection was lost.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "server/client.h"

namespace {

using daisy::Result;
using daisy::Status;
using daisy::Value;
using daisy::server::DaisyClient;

int Usage(const char* argv0) {
  // daisy-lint: allow(raw-stderr) CLI usage text, not engine logging
  std::fprintf(stderr,
               "usage: %s --connect unix:PATH|tcp:HOST:PORT [-e STMT]\n",
               argv0);
  return 2;
}

struct CliState {
  int64_t timeout_ms = -1;
  uint64_t row_limit = 0;
};

void PrintRows(const DaisyClient::QueryResult& result) {
  for (size_t i = 0; i < result.header.names.size(); ++i) {
    std::printf(i == 0 ? "%s" : " | %s", result.header.names[i].c_str());
  }
  if (!result.header.names.empty()) std::printf("\n");
  for (const std::vector<Value>& row : result.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      std::printf(i == 0 ? "%s" : " | %s", row[i].ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf("(%llu rows, epoch %llu, %s%s)\n",
              static_cast<unsigned long long>(result.done.total_rows),
              static_cast<unsigned long long>(result.done.epoch),
              result.done.read_path ? "read path" : "writer path",
              result.done.termination == 0
                  ? ""
                  : (", cut: " + result.done.cut_node).c_str());
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// Coerces a textual field: int if it parses fully as one, double next,
/// string otherwise. daisyd validates against the real schema server-side.
Value CoerceLoose(const std::string& field) {
  errno = 0;
  char* end = nullptr;
  const long long i = std::strtoll(field.c_str(), &end, 10);
  if (errno == 0 && end != field.c_str() && *end == '\0') {
    return Value(static_cast<int64_t>(i));
  }
  errno = 0;
  const double d = std::strtod(field.c_str(), &end);
  if (errno == 0 && end != field.c_str() && *end == '\0') return Value(d);
  return Value(field);
}

/// Executes one statement. Returns OK even for statement-level failures
/// (they are printed); a non-OK return means the connection is unusable.
Status RunStatement(DaisyClient* client, CliState* state,
                    const std::string& line, bool* failed) {
  *failed = false;
  auto report = [&](const Status& s) {
    if (!s.ok()) {
      std::printf("error: %s\n", s.ToString().c_str());
      *failed = true;
    }
  };

  if (line == ".quit" || line == ".exit") {
    return Status::NotFound("quit");
  }
  if (line == ".schema") {
    Result<daisy::server::SchemaInfoMsg> schema = client->Schema();
    if (!schema.ok()) {
      report(schema.status());
      return schema.status().code() == daisy::StatusCode::kIOError
                 ? schema.status()
                 : Status::OK();
    }
    for (const auto& t : schema.value().tables) {
      std::printf("%s (%llu rows):", t.name.c_str(),
                  static_cast<unsigned long long>(t.num_rows));
      for (size_t i = 0; i < t.columns.size(); ++i) {
        std::printf(" %s", t.columns[i].c_str());
      }
      std::printf("\n");
    }
    return Status::OK();
  }
  if (line == ".health") {
    Result<daisy::server::HealthInfoMsg> health = client->Health();
    if (!health.ok()) {
      report(health.status());
      return Status::OK();
    }
    static const char* kStates[] = {"healthy", "degraded-read-only",
                                    "failed"};
    const uint8_t s = health.value().state;
    std::printf("state: %s\n", s < 3 ? kStates[s] : "unknown");
    if (!health.value().cause.empty()) {
      std::printf("cause: %s\n", health.value().cause.c_str());
    }
    return Status::OK();
  }
  if (line == ".metrics") {
    Result<std::string> page = client->Metrics();
    if (!page.ok()) {
      report(page.status());
      return Status::OK();
    }
    std::printf("%s", page.value().c_str());
    return Status::OK();
  }
  if (line.rfind(".analyze ", 0) == 0) {
    Result<std::string> text =
        client->ExplainAnalyze(line.substr(9), state->timeout_ms);
    if (text.ok()) {
      std::printf("%s\n", text.value().c_str());
    } else {
      report(text.status());
    }
    return Status::OK();
  }
  if (line.rfind(".append ", 0) == 0) {
    const std::string rest = line.substr(8);
    const size_t space = rest.find(' ');
    if (space == std::string::npos) {
      report(Status::InvalidArgument(".append TABLE v1,v2,..."));
      return Status::OK();
    }
    std::vector<Value> row;
    for (const std::string& f : SplitCommas(rest.substr(space + 1))) {
      row.push_back(CoerceLoose(f));
    }
    Result<uint64_t> n =
        client->Append(rest.substr(0, space), {std::move(row)});
    if (n.ok()) {
      std::printf("appended %llu row(s), durable\n",
                  static_cast<unsigned long long>(n.value()));
    } else {
      report(n.status());
    }
    return Status::OK();
  }
  if (line.rfind(".delete ", 0) == 0) {
    const std::string rest = line.substr(8);
    const size_t space = rest.find(' ');
    if (space == std::string::npos) {
      report(Status::InvalidArgument(".delete TABLE id,id,..."));
      return Status::OK();
    }
    std::vector<uint64_t> ids;
    for (const std::string& f : SplitCommas(rest.substr(space + 1))) {
      ids.push_back(std::strtoull(f.c_str(), nullptr, 10));
    }
    Result<uint64_t> n =
        client->Delete(rest.substr(0, space), std::move(ids));
    if (n.ok()) {
      std::printf("deleted %llu row(s), durable\n",
                  static_cast<unsigned long long>(n.value()));
    } else {
      report(n.status());
    }
    return Status::OK();
  }
  if (line == ".cleanall") {
    report(client->CleanAll());
    return Status::OK();
  }
  if (line == ".checkpoint") {
    report(client->Checkpoint());
    return Status::OK();
  }
  if (line.rfind(".timeout ", 0) == 0) {
    state->timeout_ms = std::atoll(line.c_str() + 9);
    return Status::OK();
  }
  if (line.rfind(".limit ", 0) == 0) {
    state->row_limit =
        static_cast<uint64_t>(std::strtoull(line.c_str() + 7, nullptr, 10));
    return Status::OK();
  }
  if (!line.empty() && line[0] == '.') {
    report(Status::InvalidArgument("unknown command: " + line));
    return Status::OK();
  }

  Result<DaisyClient::QueryResult> result =
      client->Query(line, state->timeout_ms, state->row_limit);
  if (!result.ok()) {
    report(result.status());
    // An IOError means the stream itself died; anything else is a
    // statement-level failure on a healthy connection.
    if (result.status().code() == daisy::StatusCode::kIOError) {
      return result.status();
    }
    return Status::OK();
  }
  PrintRows(result.value());
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  std::string one_shot;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else if (arg == "-e" && i + 1 < argc) {
      one_shot = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (connect.empty()) return Usage(argv[0]);

  Result<std::unique_ptr<DaisyClient>> client =
      [&]() -> Result<std::unique_ptr<DaisyClient>> {
    if (connect.rfind("unix:", 0) == 0) {
      return DaisyClient::ConnectUnix(connect.substr(5));
    }
    if (connect.rfind("tcp:", 0) == 0) {
      const std::string hostport = connect.substr(4);
      const size_t colon = hostport.rfind(':');
      if (colon == std::string::npos) {
        return Status::InvalidArgument("bad tcp spec: " + connect);
      }
      return DaisyClient::ConnectTcp(hostport.substr(0, colon),
                                     std::atoi(hostport.c_str() + colon + 1));
    }
    return Status::InvalidArgument("bad --connect spec: " + connect);
  }();
  if (!client.ok()) {
    // daisy-lint: allow(raw-stderr) CLI connect diagnostic, not engine logging
    std::fprintf(stderr, "daisy-cli: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  CliState state;
  if (!one_shot.empty()) {
    bool failed = false;
    const Status s =
        RunStatement(client.value().get(), &state, one_shot, &failed);
    return (!s.ok() || failed) ? 1 : 0;
  }

  char buf[1 << 16];
  while (std::fgets(buf, sizeof(buf), stdin) != nullptr) {
    std::string line(buf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    bool failed = false;
    const Status s = RunStatement(client.value().get(), &state, line, &failed);
    if (!s.ok()) {
      return s.message() == "quit" ? 0 : 1;
    }
  }
  return 0;
}
