// Figure 6: SP query cost when varying suppkey selectivity.
//
// Paper setup: lineorder versions with 100 / 1K / 10K distinct suppkeys
// (scaled to 20 / 100 / 1000 over 10K rows), FD orderkey -> suppkey, 50
// non-overlapping 2% queries with range filters over the *lhs* (orderkey)
// — the transitive-closure relaxation case.
//
// Expected shape (paper): Daisy faster despite the closure; the smaller
// the suppkey count, the higher the cost (each erroneous suppkey matches
// many orderkeys -> more candidates).

#include "bench/bench_util.h"
#include "datagen/ssb.h"
#include "datagen/workload.h"

using namespace daisy;
using namespace daisy::bench;

int main() {
  WarmupHeap();
  std::printf(
      "# Figure 6: SP cost vs #distinct suppkeys (lhs-filter workload)\n");
  std::printf("# %-10s %14s %14s %14s %14s\n", "suppkeys", "full_clean_s",
              "offline_qry_s", "offline_total", "daisy_total_s");
  for (size_t suppkeys : {20u, 100u, 1000u}) {
    SsbConfig config;
    config.num_rows = 10000;
    config.distinct_orderkeys = 500;
    config.distinct_suppkeys = suppkeys;
    config.violating_fraction = 1.0;
    config.error_rate = 0.1;

    Database offline_db;
    CheckOk(offline_db.AddTable(GenerateLineorder(config).dirty),
            "add lineorder");
    ConstraintSet rules;
    CheckOk(rules.AddFromText(
                "phi: FD orderkey -> suppkey", "lineorder",
                offline_db.GetTable("lineorder").ValueOrDie()->schema()),
            "parse rule");
    auto queries = UnwrapOrDie(
        MakeNonOverlappingRangeQueries(
            *offline_db.GetTable("lineorder").ValueOrDie(), "orderkey", 50,
            "orderkey, suppkey"),
        "workload");
    OfflineRun offline = RunOfflineWorkload(&offline_db, rules, queries);

    Database daisy_db;
    CheckOk(daisy_db.AddTable(GenerateLineorder(config).dirty),
            "add lineorder");
    DaisyOptions options;
    options.mode = DaisyOptions::Mode::kAdaptive;
    DaisyEngine engine(&daisy_db, CloneRules(rules), options);
    CheckOk(engine.Prepare(), "prepare");
    DaisyRun daisy = RunDaisyWorkload(&engine, queries);

    std::printf("  %-10zu %14.3f %14.3f %14.3f %14.3f\n", suppkeys,
                offline.clean_seconds, offline.query_seconds,
                offline.total_seconds, daisy.total_seconds);
  }
  return 0;
}
