// Shared helpers for the figure/table reproduction benches: workload
// runners for Daisy (incremental / adaptive), the offline baseline, and
// series printing. Each bench binary prints the same rows/series the paper
// plots; absolute numbers differ from the paper's Spark cluster, the shape
// is what is reproduced (see EXPERIMENTS.md).

#ifndef DAISY_BENCH_BENCH_UTIL_H_
#define DAISY_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "clean/daisy_engine.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "offline/offline_cleaner.h"

namespace daisy {
namespace bench {

/// Grows the heap and touches the pages once so that the first measured
/// phase does not pay the allocator/page-fault warm-up.
inline void WarmupHeap() {
  std::vector<char*> blocks;
  for (int i = 0; i < 100; ++i) {
    char* p = new char[2 << 20];
    for (int j = 0; j < (2 << 20); j += 4096) p[j] = 1;
    blocks.push_back(p);
  }
  for (char* p : blocks) delete[] p;
}

/// Aborts the bench on error (benches are generated-input only).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T UnwrapOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Copyable rule-set helper (ConstraintSet is copyable; this reads as
/// intent at call sites).
inline ConstraintSet CloneRules(const ConstraintSet& rules) { return rules; }

/// Per-query timing of a workload through a prepared DaisyEngine.
struct DaisyRun {
  std::vector<double> per_query_seconds;
  double total_seconds = 0;
  size_t total_repaired = 0;
  size_t switch_query = 0;  ///< 1-based query index of the cost-model
                            ///< switch; 0 = never switched
};

inline DaisyRun RunDaisyWorkload(DaisyEngine* engine,
                                 const std::vector<std::string>& queries) {
  DaisyRun run;
  run.per_query_seconds.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    Timer t;
    QueryReport report =
        UnwrapOrDie(engine->Query(queries[i]), queries[i].c_str());
    const double sec = t.ElapsedSeconds();
    run.per_query_seconds.push_back(sec);
    run.total_seconds += sec;
    run.total_repaired += report.errors_fixed;
    if (report.switched_to_full && run.switch_query == 0) {
      run.switch_query = i + 1;
    }
  }
  return run;
}

/// Offline baseline: full cleaning first, then the (plain) queries.
struct OfflineRun {
  double clean_seconds = 0;
  std::vector<double> per_query_seconds;
  double query_seconds = 0;
  double total_seconds = 0;
};

inline OfflineRun RunOfflineWorkload(Database* db, const ConstraintSet& rules,
                                     const std::vector<std::string>& queries) {
  OfflineRun run;
  Timer clean_timer;
  OfflineCleaner cleaner(db, &rules);
  (void)UnwrapOrDie(cleaner.CleanAll(), "offline CleanAll");
  run.clean_seconds = clean_timer.ElapsedSeconds();
  QueryExecutor exec(db);
  for (const std::string& sql : queries) {
    Timer t;
    (void)UnwrapOrDie(exec.Execute(sql), sql.c_str());
    const double sec = t.ElapsedSeconds();
    run.per_query_seconds.push_back(sec);
    run.query_seconds += sec;
  }
  run.total_seconds = run.clean_seconds + run.query_seconds;
  return run;
}

// ------------------------------------------------- machine-readable output --

/// One measured result: a name, the wall time, and free-form numeric
/// counters / string config. Serialized to BENCH_<bench>.json so the perf
/// trajectory is trackable across PRs (compare files from two builds).
struct BenchResult {
  std::string name;
  double wall_ms = 0;
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, std::string>> config;
};

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Collects BenchResults and writes BENCH_<bench>.json into the working
/// directory on Finish() (or destruction). JSON shape:
///   {"bench": "...", "results": [{"name": ..., "wall_ms": ...,
///    "counters": {...}, "config": {...}}, ...]}
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench) : bench_(std::move(bench)) {}
  ~BenchJsonWriter() { Finish(); }

  void Add(BenchResult result) { results_.push_back(std::move(result)); }

  void Finish() {
    if (done_) return;
    done_ = true;
    const std::string path = "BENCH_" + bench_ + ".json";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"results\": [",
                 JsonEscape(bench_).c_str());
    for (size_t i = 0; i < results_.size(); ++i) {
      const BenchResult& r = results_[i];
      std::fprintf(f, "%s\n  {\"name\": \"%s\", \"wall_ms\": %.3f",
                   i == 0 ? "" : ",", JsonEscape(r.name).c_str(), r.wall_ms);
      std::fprintf(f, ", \"counters\": {");
      for (size_t k = 0; k < r.counters.size(); ++k) {
        std::fprintf(f, "%s\"%s\": %.6g", k == 0 ? "" : ", ",
                     JsonEscape(r.counters[k].first).c_str(),
                     r.counters[k].second);
      }
      std::fprintf(f, "}, \"config\": {");
      for (size_t k = 0; k < r.config.size(); ++k) {
        std::fprintf(f, "%s\"%s\": \"%s\"", k == 0 ? "" : ", ",
                     JsonEscape(r.config[k].first).c_str(),
                     JsonEscape(r.config[k].second).c_str());
      }
      std::fprintf(f, "}}");
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote %s (%zu results)\n", path.c_str(),
                 results_.size());
  }

 private:
  std::string bench_;
  std::vector<BenchResult> results_;
  bool done_ = false;
};

/// Diffs MetricsRegistry::Global() counters around a bench leg. The
/// registry is process-global and monotonic, so a snapshot taken before
/// the leg subtracted from one taken after isolates exactly the leg's own
/// work — no per-leg engine accessor plumbing required. Counter names
/// appended to a BenchResult must not end in "_ms": bench_diff.py treats
/// those as time-like and gates them against the committed baseline, while
/// registry counts are exact and belong in the informational set.
class RegistryCounterDelta {
 public:
  RegistryCounterDelta() : before_(MetricsRegistry::Global().TakeSnapshot()) {}

  /// Restarts the window (e.g. between legs that reuse one instance).
  void Reset() { before_ = MetricsRegistry::Global().TakeSnapshot(); }

  /// Delta of one registry counter since construction/Reset(). A counter
  /// not yet registered reads as zero on either side, so instrumenting a
  /// path lazily never breaks the arithmetic.
  uint64_t Delta(const std::string& metric) const {
    const MetricsRegistry::Snapshot now =
        MetricsRegistry::Global().TakeSnapshot();
    return CounterAt(now, metric) - CounterAt(before_, metric);
  }

  /// Appends `out_name` = Delta(metric) to `result`'s counters.
  void AddTo(BenchResult* result, const std::string& out_name,
             const std::string& metric) const {
    result->counters.emplace_back(out_name,
                                  static_cast<double>(Delta(metric)));
  }

 private:
  static uint64_t CounterAt(const MetricsRegistry::Snapshot& snap,
                            const std::string& key) {
    const auto it = snap.counters.find(key);
    return it == snap.counters.end() ? 0 : it->second;
  }

  MetricsRegistry::Snapshot before_;
};

/// Prints a cumulative-time series (one line per query) in a
/// gnuplot-friendly layout: "<query> <series1> <series2> ...".
inline void PrintCumulative(const std::vector<std::string>& names,
                            const std::vector<std::vector<double>>& series) {
  std::printf("# query");
  for (const std::string& name : names) std::printf(" %s", name.c_str());
  std::printf("\n");
  size_t len = 0;
  for (const auto& s : series) len = std::max(len, s.size());
  std::vector<double> cumulative(series.size(), 0.0);
  for (size_t q = 0; q < len; ++q) {
    std::printf("%zu", q + 1);
    for (size_t s = 0; s < series.size(); ++s) {
      if (q < series[s].size()) cumulative[s] += series[s][q];
      std::printf(" %.4f", cumulative[s]);
    }
    std::printf("\n");
  }
}

}  // namespace bench
}  // namespace daisy

#endif  // DAISY_BENCH_BENCH_UTIL_H_
