// Shared helpers for the figure/table reproduction benches: workload
// runners for Daisy (incremental / adaptive), the offline baseline, and
// series printing. Each bench binary prints the same rows/series the paper
// plots; absolute numbers differ from the paper's Spark cluster, the shape
// is what is reproduced (see EXPERIMENTS.md).

#ifndef DAISY_BENCH_BENCH_UTIL_H_
#define DAISY_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "clean/daisy_engine.h"
#include "common/timer.h"
#include "offline/offline_cleaner.h"

namespace daisy {
namespace bench {

/// Grows the heap and touches the pages once so that the first measured
/// phase does not pay the allocator/page-fault warm-up.
inline void WarmupHeap() {
  std::vector<char*> blocks;
  for (int i = 0; i < 100; ++i) {
    char* p = new char[2 << 20];
    for (int j = 0; j < (2 << 20); j += 4096) p[j] = 1;
    blocks.push_back(p);
  }
  for (char* p : blocks) delete[] p;
}

/// Aborts the bench on error (benches are generated-input only).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T UnwrapOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Copyable rule-set helper (ConstraintSet is copyable; this reads as
/// intent at call sites).
inline ConstraintSet CloneRules(const ConstraintSet& rules) { return rules; }

/// Per-query timing of a workload through a prepared DaisyEngine.
struct DaisyRun {
  std::vector<double> per_query_seconds;
  double total_seconds = 0;
  size_t total_repaired = 0;
  size_t switch_query = 0;  ///< 1-based query index of the cost-model
                            ///< switch; 0 = never switched
};

inline DaisyRun RunDaisyWorkload(DaisyEngine* engine,
                                 const std::vector<std::string>& queries) {
  DaisyRun run;
  run.per_query_seconds.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    Timer t;
    QueryReport report =
        UnwrapOrDie(engine->Query(queries[i]), queries[i].c_str());
    const double sec = t.ElapsedSeconds();
    run.per_query_seconds.push_back(sec);
    run.total_seconds += sec;
    run.total_repaired += report.errors_fixed;
    if (report.switched_to_full && run.switch_query == 0) {
      run.switch_query = i + 1;
    }
  }
  return run;
}

/// Offline baseline: full cleaning first, then the (plain) queries.
struct OfflineRun {
  double clean_seconds = 0;
  std::vector<double> per_query_seconds;
  double query_seconds = 0;
  double total_seconds = 0;
};

inline OfflineRun RunOfflineWorkload(Database* db, const ConstraintSet& rules,
                                     const std::vector<std::string>& queries) {
  OfflineRun run;
  Timer clean_timer;
  OfflineCleaner cleaner(db, &rules);
  (void)UnwrapOrDie(cleaner.CleanAll(), "offline CleanAll");
  run.clean_seconds = clean_timer.ElapsedSeconds();
  QueryExecutor exec(db);
  for (const std::string& sql : queries) {
    Timer t;
    (void)UnwrapOrDie(exec.Execute(sql), sql.c_str());
    const double sec = t.ElapsedSeconds();
    run.per_query_seconds.push_back(sec);
    run.query_seconds += sec;
  }
  run.total_seconds = run.clean_seconds + run.query_seconds;
  return run;
}

/// Prints a cumulative-time series (one line per query) in a
/// gnuplot-friendly layout: "<query> <series1> <series2> ...".
inline void PrintCumulative(const std::vector<std::string>& names,
                            const std::vector<std::vector<double>>& series) {
  std::printf("# query");
  for (const std::string& name : names) std::printf(" %s", name.c_str());
  std::printf("\n");
  size_t len = 0;
  for (const auto& s : series) len = std::max(len, s.size());
  std::vector<double> cumulative(series.size(), 0.0);
  for (size_t q = 0; q < len; ++q) {
    std::printf("%zu", q + 1);
    for (size_t s = 0; s < series.size(); ++s) {
      if (q < series[s].size()) cumulative[s] += series[s][q];
      std::printf(" %.4f", cumulative[s]);
    }
    std::printf("\n");
  }
}

}  // namespace bench
}  // namespace daisy

#endif  // DAISY_BENCH_BENCH_UTIL_H_
