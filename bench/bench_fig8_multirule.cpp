// Figure 8: single rule vs multiple rules with overlapping attributes.
//
// Paper setup: lineorder ⋈ suppliers denormalized (address column
// available), rules ϕ: orderkey -> suppkey and ψ: address -> suppkey, 50
// non-overlapping queries covering the dataset. Series: cumulative time
// for Daisy and offline with 1 rule vs 2 rules.
//
// Expected shape (paper): both approaches pay more for two rules; Daisy's
// gap between 1 and 2 rules shrinks over the workload (shared correlated
// tuples + commutative merge), offline's stays (extra traversals per rule).

#include "bench/bench_util.h"
#include "datagen/ssb.h"
#include "datagen/workload.h"

using namespace daisy;
using namespace daisy::bench;

namespace {

ConstraintSet RulesFor(const Schema& schema, bool both) {
  ConstraintSet rules;
  CheckOk(rules.AddFromText("phi: FD orderkey -> suppkey", "lineorder_wide",
                            schema),
          "phi");
  if (both) {
    CheckOk(rules.AddFromText("psi: FD address -> suppkey", "lineorder_wide",
                              schema),
            "psi");
  }
  return rules;
}

}  // namespace

int main() {
  WarmupHeap();
  SsbConfig config;
  config.num_rows = 8000;
  config.distinct_orderkeys = 400;
  config.distinct_suppkeys = 40;
  config.violating_fraction = 0.8;
  config.error_rate = 0.1;

  std::printf("# Figure 8: 1 rule vs 2 overlapping rules (cumulative)\n");
  std::vector<std::vector<double>> series;
  std::vector<std::string> names;
  std::vector<double> totals;
  for (bool both : {false, true}) {
    // Daisy.
    Database daisy_db;
    CheckOk(daisy_db.AddTable(
                GenerateDenormalizedLineorder(config, 0.5).dirty),
            "add wide");
    const Schema& schema =
        daisy_db.GetTable("lineorder_wide").ValueOrDie()->schema();
    auto queries = UnwrapOrDie(
        MakeNonOverlappingRangeQueries(
            *daisy_db.GetTable("lineorder_wide").ValueOrDie(), "orderkey", 50,
            "orderkey, suppkey, address"),
        "workload");
    DaisyEngine engine(&daisy_db, RulesFor(schema, both), DaisyOptions{});
    CheckOk(engine.Prepare(), "prepare");
    DaisyRun daisy = RunDaisyWorkload(&engine, queries);
    names.push_back(both ? "daisy_2rules" : "daisy_1rule");
    series.push_back(daisy.per_query_seconds);
    totals.push_back(daisy.total_seconds);

    // Offline.
    Database offline_db;
    CheckOk(offline_db.AddTable(
                GenerateDenormalizedLineorder(config, 0.5).dirty),
            "add wide");
    OfflineRun offline =
        RunOfflineWorkload(&offline_db, RulesFor(schema, both), queries);
    std::vector<double> offline_series = offline.per_query_seconds;
    if (!offline_series.empty()) offline_series[0] += offline.clean_seconds;
    names.push_back(both ? "full_2rules" : "full_1rule");
    series.push_back(offline_series);
    totals.push_back(offline.total_seconds);
  }
  PrintCumulative(names, series);
  std::printf("# totals:");
  for (size_t i = 0; i < names.size(); ++i) {
    std::printf(" %s=%.3f", names[i].c_str(), totals[i]);
  }
  std::printf("\n");
  return 0;
}
