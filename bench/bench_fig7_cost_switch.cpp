// Figure 7: switching from incremental to full cleaning.
//
// Paper setup: 90 non-overlapping queries (equality + range, random
// selectivity) over the 100K-orderkey lineorder (scaled to 2000 orderkeys
// over 12K rows) with *low* suppkey selectivity (each suppkey pairs with
// many orderkeys, inflating candidate sets and update cost). Series:
// cumulative time of (a) Daisy w/o cost model (pure incremental), (b) Full
// cleaning upfront, (c) Daisy with the cost-model switch.
//
// Expected shape (paper): incremental alone eventually overtakes full;
// Daisy switches strategy mid-workload and lands below both.

#include "bench/bench_util.h"
#include "datagen/ssb.h"
#include "datagen/workload.h"

using namespace daisy;
using namespace daisy::bench;

int main() {
  WarmupHeap();
  SsbConfig config;
  config.num_rows = 12000;
  config.distinct_orderkeys = 2000;
  config.distinct_suppkeys = 25;  // low selectivity: many candidates
  config.violating_fraction = 1.0;
  config.error_rate = 0.2;
  config.error_style = SsbErrorStyle::kInDomain;

  ConstraintSet rules;
  {
    GeneratedData probe = GenerateLineorder(config);
    CheckOk(rules.AddFromText("phi: FD orderkey -> suppkey", "lineorder",
                              probe.dirty.schema()),
            "parse rule");
  }

  Database wl_db;
  CheckOk(wl_db.AddTable(GenerateLineorder(config).dirty), "add");
  auto queries = UnwrapOrDie(
      MakeRandomSelectivityQueries(*wl_db.GetTable("lineorder").ValueOrDie(),
                                   "orderkey", 90, 23, "orderkey, suppkey"),
      "workload");

  // (a) Daisy without the cost model.
  Database incr_db;
  CheckOk(incr_db.AddTable(GenerateLineorder(config).dirty), "add");
  DaisyOptions incr_opts;
  incr_opts.mode = DaisyOptions::Mode::kIncremental;
  DaisyEngine incr(&incr_db, CloneRules(rules), incr_opts);
  CheckOk(incr.Prepare(), "prepare");
  DaisyRun incr_run = RunDaisyWorkload(&incr, queries);

  // (b) Full cleaning, then queries. The cleaning cost is charged to the
  // first query (the paper draws it as the curve's offset).
  Database full_db;
  CheckOk(full_db.AddTable(GenerateLineorder(config).dirty), "add");
  OfflineRun full = RunOfflineWorkload(&full_db, rules, queries);
  std::vector<double> full_series = full.per_query_seconds;
  if (!full_series.empty()) full_series[0] += full.clean_seconds;

  // (c) Daisy with the adaptive switch.
  Database adapt_db;
  CheckOk(adapt_db.AddTable(GenerateLineorder(config).dirty), "add");
  DaisyOptions adapt_opts;
  adapt_opts.mode = DaisyOptions::Mode::kAdaptive;
  DaisyEngine adapt(&adapt_db, CloneRules(rules), adapt_opts);
  CheckOk(adapt.Prepare(), "prepare");
  DaisyRun adapt_run = RunDaisyWorkload(&adapt, queries);

  std::printf("# Figure 7: cumulative cost, incremental vs full vs switch\n");
  std::printf("# Daisy switched to full cleaning at query %zu\n",
              adapt_run.switch_query);
  PrintCumulative({"daisy_wo_cost", "full", "daisy"},
                  {incr_run.per_query_seconds, full_series,
                   adapt_run.per_query_seconds});
  std::printf("# totals: daisy_wo_cost=%.3f full=%.3f daisy=%.3f\n",
              incr_run.total_seconds, full.total_seconds,
              adapt_run.total_seconds);
  return 0;
}
