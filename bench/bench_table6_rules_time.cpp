// Table 6: response time when increasing the number of rules (hospital
// 100K version, scaled to 4K rows). Rows: Full cleaning, Daisy (a 4-query
// workload accessing the whole dataset), HoloClean-sim.
//
// Expected shape (paper): Daisy <= Full < HoloClean by a wide margin —
// HoloClean re-traverses the dataset per dirty cell to build domains,
// while Daisy shares one relaxation pass across each query's dirty
// groups.

#include "bench/bench_util.h"
#include "datagen/realworld.h"
#include "datagen/workload.h"
#include "holo/holoclean_sim.h"

using namespace daisy;
using namespace daisy::bench;

namespace {

ConstraintSet RuleSubset(const Schema& schema, size_t count) {
  static const char* kRules[] = {"phi1: FD zip -> city",
                                 "phi2: FD hospital_name -> zip",
                                 "phi3: FD phone -> zip"};
  ConstraintSet rules;
  for (size_t i = 0; i < count; ++i) {
    CheckOk(rules.AddFromText(kRules[i], "hospital", schema), kRules[i]);
  }
  return rules;
}

}  // namespace

int main() {
  WarmupHeap();
  HospitalConfig config;
  config.num_rows = 4000;
  config.num_hospitals = 150;
  config.cell_error_rate = 0.05;

  std::printf("# Table 6: response time vs number of rules (seconds)\n");
  std::printf("# %-10s %12s %12s %12s\n", "rules", "full", "daisy",
              "holoclean");
  for (size_t nrules = 1; nrules <= 3; ++nrules) {
    // Full cleaning.
    double full_seconds;
    {
      GeneratedData data = GenerateHospital(config);
      Database db;
      const Schema schema = data.dirty.schema();
      CheckOk(db.AddTable(std::move(data.dirty)), "add");
      ConstraintSet rules = RuleSubset(schema, nrules);
      Timer t;
      OfflineCleaner cleaner(&db, &rules);
      (void)UnwrapOrDie(cleaner.CleanAll(), "offline");
      full_seconds = t.ElapsedSeconds();
    }
    // Daisy: 4 SP queries covering the dataset.
    double daisy_seconds;
    {
      GeneratedData data = GenerateHospital(config);
      Database db;
      const Schema schema = data.dirty.schema();
      CheckOk(db.AddTable(std::move(data.dirty)), "add");
      DaisyEngine engine(&db, RuleSubset(schema, nrules), DaisyOptions{});
      CheckOk(engine.Prepare(), "prepare");
      auto queries = UnwrapOrDie(
          MakeNonOverlappingRangeQueries(
              *db.GetTable("hospital").ValueOrDie(), "provider_id", 4,
              "hospital_name, zip, city, phone"),
          "workload");
      Timer t;
      for (const std::string& sql : queries) {
        (void)UnwrapOrDie(engine.Query(sql), sql.c_str());
      }
      daisy_seconds = t.ElapsedSeconds();
    }
    // HoloClean-sim (domain generation + inference; no master data).
    double holo_seconds;
    {
      GeneratedData data = GenerateHospital(config);
      ConstraintSet rules = RuleSubset(data.dirty.schema(), nrules);
      Timer t;
      HoloCleanSim sim(&data.dirty, &rules, HoloOptions{});
      (void)UnwrapOrDie(sim.Run(), "holo");
      holo_seconds = t.ElapsedSeconds();
    }
    std::printf("  phi1..phi%zu %12.3f %12.3f %12.3f\n", nrules, full_seconds,
                daisy_seconds, holo_seconds);
  }
  return 0;
}
