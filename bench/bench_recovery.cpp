// Recovery bench: cold re-clean vs warm restore.
//
// A 50k-row salary/tax relation under the order DC
// ¬(t1.salary < t2.salary ∧ t1.tax > t2.tax) plus an FD (zip -> city) is
// fully cleaned once and checkpointed. A process restart then has two
// options: the pre-persistence engine re-detects and re-repairs everything
// from scratch (cold), while DaisyEngine::Open restores the snapshot and
// resumes with detector coverage and repairs already warm. The bench
// reports both wall times plus the snapshot write cost, asserts the warm
// engine's cleaning state is identical to the cold one's (same repaired
// cells, rules fully checked, zero detection work on the next query), and
// emits BENCH_recovery.json.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "persist/io_util.h"

using namespace daisy;
using namespace daisy::bench;

namespace {

constexpr size_t kRows = 50000;
constexpr double kErrorFraction = 0.001;

Schema EmpSchema() {
  return Schema({{"zip", ValueType::kInt},
                 {"city", ValueType::kString},
                 {"salary", ValueType::kDouble},
                 {"tax", ValueType::kDouble}});
}

Table BaseTable(uint64_t seed) {
  Rng rng(seed);
  Table t("emp", EmpSchema());
  t.Reserve(kRows);
  static const char* kCities[] = {"LA", "SF", "NY", "SEA"};
  for (size_t i = 0; i < kRows; ++i) {
    // Fine-grained zip domain: FD groups stay ~5 rows, so the dirty part
    // is ~kErrorFraction of the relation (not every group).
    const int64_t zip = rng.UniformInt(0, static_cast<int64_t>(kRows) / 5);
    const char* city = kCities[(rng.Bernoulli(0.001) ? zip + 1 : zip) % 4];
    const double salary = rng.UniformDouble(1000, 100000);
    double tax = salary / 200000.0;
    if (rng.Bernoulli(kErrorFraction)) tax += rng.UniformDouble(0.1, 0.5);
    CheckOk(t.AppendRow({Value(zip), Value(city), Value(salary), Value(tax)}),
            "append row");
  }
  return t;
}

ConstraintSet Rules() {
  ConstraintSet rules;
  const Schema schema = EmpSchema();
  CheckOk(rules.AddFromText("phi: FD zip -> city", "emp", schema), "phi");
  CheckOk(rules.AddFromText(
              "psi: !(t1.salary < t2.salary & t1.tax > t2.tax)", "emp",
              schema),
          "psi");
  return rules;
}

size_t RepairedCells(const DaisyEngine& engine) {
  const ProvenanceStore* prov =
      const_cast<DaisyEngine&>(engine).provenance("emp");
  return prov == nullptr ? 0 : prov->NumRepairedCells();
}

void AssertSameCleanState(DaisyEngine* warm, DaisyEngine* cold) {
  const Table* wt = warm->database()->GetTable("emp").value();
  const Table* ct = cold->database()->GetTable("emp").value();
  if (wt->CountProbabilisticCells() != ct->CountProbabilisticCells() ||
      wt->TotalCandidateWidth() != ct->TotalCandidateWidth() ||
      RepairedCells(*warm) != RepairedCells(*cold)) {
    std::fprintf(stderr,
                 "[bench] warm/cold cleaning state diverged: cells %zu vs "
                 "%zu, width %zu vs %zu, repaired %zu vs %zu\n",
                 wt->CountProbabilisticCells(), ct->CountProbabilisticCells(),
                 wt->TotalCandidateWidth(), ct->TotalCandidateWidth(),
                 RepairedCells(*warm), RepairedCells(*cold));
    std::exit(1);
  }
  for (RowId r = 0; r < wt->num_rows(); ++r) {
    for (size_t c = 0; c < wt->num_columns(); ++c) {
      if (!(wt->cell(r, c) == ct->cell(r, c))) {
        std::fprintf(stderr, "[bench] cell (%zu, %zu) diverged\n", r, c);
        std::exit(1);
      }
    }
  }
  for (const char* rule : {"phi", "psi"}) {
    if (!warm->RuleFullyChecked(rule).ValueOrDie() ||
        !cold->RuleFullyChecked(rule).ValueOrDie()) {
      std::fprintf(stderr, "[bench] rule %s not fully checked\n", rule);
      std::exit(1);
    }
  }
}

}  // namespace

int main() {
  WarmupHeap();
  BenchJsonWriter json("recovery");
  char tmpl[] = "/tmp/daisy_bench_recovery_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fprintf(stderr, "[bench] mkdtemp failed\n");
    return 1;
  }
  const std::string state_dir = std::string(dir) + "/state";

  std::printf("# Recovery: cold re-clean vs warm restore (%zu rows)\n",
              kRows);

  // Initial session: clean everything, then persist.
  Database db;
  CheckOk(db.AddTable(BaseTable(7)), "add table");
  DaisyEngine engine(&db, Rules());
  CheckOk(engine.Prepare(), "prepare");
  Timer clean_timer;
  CheckOk(engine.CleanAllRemaining(), "initial clean");
  const double initial_clean_s = clean_timer.ElapsedSeconds();
  Timer snapshot_timer;
  CheckOk(engine.EnablePersistence(state_dir), "enable persistence");
  const double snapshot_s = snapshot_timer.ElapsedSeconds();

  // Cold restart: what a restarted process paid before this layer —
  // rebuild from raw data and re-clean everything.
  Database cold_db;
  CheckOk(cold_db.AddTable(BaseTable(7)), "cold add table");
  DaisyEngine cold(&cold_db, Rules());
  Timer cold_timer;
  CheckOk(cold.Prepare(), "cold prepare");
  CheckOk(cold.CleanAllRemaining(), "cold re-clean");
  const double cold_s = cold_timer.ElapsedSeconds();

  // Warm restart: snapshot + WAL restore.
  Database warm_db;
  Timer warm_timer;
  auto warm = UnwrapOrDie(DaisyEngine::Open(state_dir, &warm_db), "open");
  const double warm_s = warm_timer.ElapsedSeconds();

  AssertSameCleanState(warm.get(), &cold);

  // The next query on the warm engine must do zero detection work.
  QueryReport report = UnwrapOrDie(
      warm->Query("SELECT * FROM emp WHERE salary > 50000"), "warm query");
  if (report.detect_ops != 0 || report.errors_fixed != 0) {
    std::fprintf(stderr, "[bench] warm engine re-detected (%zu ops)\n",
                 report.detect_ops);
    return 1;
  }

  std::printf("  %-18s %10.4f s\n", "initial_clean", initial_clean_s);
  std::printf("  %-18s %10.4f s\n", "snapshot_write", snapshot_s);
  std::printf("  %-18s %10.4f s\n", "cold_reclean", cold_s);
  std::printf("  %-18s %10.4f s\n", "warm_restore", warm_s);
  std::printf("  %-18s %9.1fx\n", "speedup",
              warm_s > 0 ? cold_s / warm_s : 0.0);

  BenchResult result;
  result.name = "restart_50k";
  result.wall_ms = warm_s * 1e3;
  result.counters = {
      {"initial_clean_ms", initial_clean_s * 1e3},
      {"snapshot_write_ms", snapshot_s * 1e3},
      {"cold_reclean_ms", cold_s * 1e3},
      {"warm_restore_ms", warm_s * 1e3},
      {"speedup", warm_s > 0 ? cold_s / warm_s : 0.0},
      {"repaired_cells", static_cast<double>(RepairedCells(*warm))},
  };
  result.config = {{"rows", std::to_string(kRows)},
                   {"error_fraction", std::to_string(kErrorFraction)},
                   {"rules", "phi(FD zip->city), psi(salary/tax DC)"}};
  json.Add(std::move(result));
  json.Finish();

  // Best-effort temp-dir cleanup; a leftover file cannot affect the
  // measurements already written out.
  (void)daisy::persist::RemoveFileIfExists(state_dir +
                                           "/snapshot-000001.dsnap");
  (void)daisy::persist::RemoveFileIfExists(state_dir + "/wal-000001.dwal");
  ::rmdir(state_dir.c_str());
  ::rmdir(dir);
  return 0;
}
