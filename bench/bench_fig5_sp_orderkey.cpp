// Figure 5: SP query cost when varying orderkey selectivity.
//
// Paper setup: lineorder versions with 5K / 10K / 100K distinct orderkeys
// (scaled here to 250 / 500 / 5000 over 10K rows), FD orderkey -> suppkey,
// every orderkey violating, 50 non-overlapping queries of 2% selectivity
// with range filters over the *rhs* (suppkey). Series: offline full
// cleaning (+ its query phase) vs Daisy.
//
// Expected shape (paper): both grow with orderkey count; Daisy ~2x faster
// on average; the gap narrows as selectivity rises (more candidates per
// dirty cell).

#include "bench/bench_util.h"
#include "datagen/ssb.h"
#include "datagen/workload.h"

using namespace daisy;
using namespace daisy::bench;

int main() {
  WarmupHeap();
  std::printf(
      "# Figure 5: SP cost vs #distinct orderkeys (rhs-filter workload)\n");
  std::printf("# %-10s %14s %14s %14s %14s\n", "orderkeys", "full_clean_s",
              "offline_qry_s", "offline_total", "daisy_total_s");
  for (size_t orderkeys : {250u, 500u, 5000u}) {
    SsbConfig config;
    config.num_rows = 10000;
    config.distinct_orderkeys = orderkeys;
    config.distinct_suppkeys = 100;
    config.violating_fraction = 1.0;  // worst case: every orderkey dirty
    config.error_rate = 0.1;

    // Offline run.
    Database offline_db;
    CheckOk(offline_db.AddTable(GenerateLineorder(config).dirty),
            "add lineorder");
    ConstraintSet rules;
    CheckOk(rules.AddFromText(
                "phi: FD orderkey -> suppkey", "lineorder",
                offline_db.GetTable("lineorder").ValueOrDie()->schema()),
            "parse rule");
    // 50 non-overlapping 2% queries with filters on the rhs (suppkey).
    auto queries = UnwrapOrDie(
        MakeNonOverlappingRangeQueries(
            *offline_db.GetTable("lineorder").ValueOrDie(), "suppkey", 50,
            "orderkey, suppkey"),
        "workload");
    OfflineRun offline = RunOfflineWorkload(&offline_db, rules, queries);

    // Daisy run on a fresh dirty copy.
    Database daisy_db;
    CheckOk(daisy_db.AddTable(GenerateLineorder(config).dirty),
            "add lineorder");
    DaisyOptions options;
    options.mode = DaisyOptions::Mode::kAdaptive;
    DaisyEngine engine(&daisy_db, CloneRules(rules), options);
    CheckOk(engine.Prepare(), "prepare");
    DaisyRun daisy = RunDaisyWorkload(&engine, queries);

    std::printf("  %-10zu %14.3f %14.3f %14.3f %14.3f\n", orderkeys,
                offline.clean_seconds, offline.query_seconds,
                offline.total_seconds, daisy.total_seconds);
  }
  return 0;
}
