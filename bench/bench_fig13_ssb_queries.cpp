// Figure 13: complex SSB-family queries (Q1 / Q2 / Q3 ladder).
//
// Paper setup: Q1 joins lineorder with supplier under a suppkey range
// filter; Q2 additionally joins part and date and groups by year and
// brand; Q3 adds a fourth join with customer. All project the
// (probabilistic) keys. 10 queries per family over the same engine state.
//
// Expected shape (paper): response time grows modestly with query
// complexity — cleaning is pushed down to the lineorder/supplier join, so
// the extra joins add plain query cost only.

#include "bench/bench_util.h"
#include "datagen/ssb.h"

using namespace daisy;
using namespace daisy::bench;

namespace {

void BuildDatabase(Database* db, const SsbConfig& config) {
  CheckOk(db->AddTable(GenerateLineorder(config).dirty), "lineorder");
  CheckOk(db->AddTable(GenerateSupplier(config.distinct_suppkeys * 5,
                                        config.distinct_suppkeys, 0.5, 0.3, 5)
                           .dirty),
          "supplier");
  CheckOk(db->AddTable(GeneratePart(config.distinct_partkeys, 3)), "part");
  CheckOk(db->AddTable(GenerateDate(config.distinct_dates, 3)), "date");
  CheckOk(db->AddTable(GenerateCustomer(config.distinct_custkeys, 3)),
          "customer");
}

std::string Q1(int lo, int hi) {
  char sql[512];
  std::snprintf(sql, sizeof(sql),
                "SELECT lineorder.orderkey, lineorder.suppkey, supplier.name "
                "FROM lineorder, supplier "
                "WHERE lineorder.suppkey = supplier.suppkey AND "
                "lineorder.suppkey >= %d AND lineorder.suppkey <= %d",
                lo, hi);
  return sql;
}

std::string Q2(int lo, int hi) {
  char sql[768];
  std::snprintf(
      sql, sizeof(sql),
      "SELECT date.year, part.brand, SUM(lineorder.revenue) AS rev "
      "FROM lineorder, supplier, part, date "
      "WHERE lineorder.suppkey = supplier.suppkey AND "
      "lineorder.partkey = part.partkey AND "
      "lineorder.orderdate = date.datekey AND "
      "lineorder.suppkey >= %d AND lineorder.suppkey <= %d "
      "GROUP BY date.year, part.brand",
      lo, hi);
  return sql;
}

std::string Q3(int lo, int hi) {
  char sql[1024];
  std::snprintf(
      sql, sizeof(sql),
      "SELECT date.year, customer.nation, SUM(lineorder.revenue) AS rev "
      "FROM lineorder, supplier, part, date, customer "
      "WHERE lineorder.suppkey = supplier.suppkey AND "
      "lineorder.partkey = part.partkey AND "
      "lineorder.orderdate = date.datekey AND "
      "lineorder.custkey = customer.custkey AND "
      "lineorder.suppkey >= %d AND lineorder.suppkey <= %d "
      "GROUP BY date.year, customer.nation",
      lo, hi);
  return sql;
}

}  // namespace

// One family leg over a fresh engine state; `optimizer` toggles the
// cost-based pass so the same binary measures both plans. The cold run is
// the paper's ladder (cleaning work dominates and is identical in both
// legs); the warm run repeats the same queries after the touched slices
// are clean, which is where join ordering is the dominant cost.
struct FamilyRun {
  DaisyRun cold;
  DaisyRun warm;
};

FamilyRun RunFamily(int family, const SsbConfig& config, bool optimizer) {
  Database db;
  BuildDatabase(&db, config);
  ConstraintSet rules;
  CheckOk(rules.AddFromText("phi: FD orderkey -> suppkey", "lineorder",
                            db.GetTable("lineorder").ValueOrDie()->schema()),
          "phi");
  CheckOk(rules.AddFromText("psi: FD address -> suppkey", "supplier",
                            db.GetTable("supplier").ValueOrDie()->schema()),
          "psi");
  DaisyOptions options;
  options.optimizer = optimizer;
  DaisyEngine engine(&db, std::move(rules), options);
  CheckOk(engine.Prepare(), "prepare");

  std::vector<std::string> queries;
  for (int q = 0; q < 10; ++q) {
    const int lo = q * 4;
    const int hi = lo + 3;
    queries.push_back(family == 1 ? Q1(lo, hi)
                                  : family == 2 ? Q2(lo, hi) : Q3(lo, hi));
  }
  FamilyRun run;
  run.cold = RunDaisyWorkload(&engine, queries);
  std::vector<std::string> warm_queries;
  for (int rep = 0; rep < 5; ++rep) {
    warm_queries.insert(warm_queries.end(), queries.begin(), queries.end());
  }
  run.warm = RunDaisyWorkload(&engine, warm_queries);
  return run;
}

int main() {
  WarmupHeap();
  SsbConfig config;
  config.num_rows = 6000;
  config.distinct_orderkeys = 300;
  config.distinct_suppkeys = 40;
  config.violating_fraction = 0.8;
  config.error_rate = 0.1;

  std::printf("# Figure 13: SSB query-complexity ladder, cumulative time\n");
  BenchJsonWriter json("fig13_ssb");
  std::vector<std::vector<double>> series;
  for (int family = 1; family <= 3; ++family) {
    // Registry deltas around the optimizer-on leg: exact engine-side work
    // counts (violation checks, repairs, delta rows) for the family,
    // straight from the instrumented hot paths rather than re-derived from
    // QueryReports. Captured before the off leg runs so its work does not
    // bleed in (the registry is process-global).
    RegistryCounterDelta reg;
    FamilyRun on = RunFamily(family, config, /*optimizer=*/true);
    const double detect_ops =
        static_cast<double>(reg.Delta("daisy_engine_detect_ops_total"));
    const double registry_repairs =
        static_cast<double>(reg.Delta("daisy_engine_repairs_total"));
    const double delta_rows =
        static_cast<double>(reg.Delta("daisy_engine_delta_rows_checked_total"));
    FamilyRun off = RunFamily(family, config, /*optimizer=*/false);
    series.push_back(on.cold.per_query_seconds);

    BenchResult result;
    result.name = "Q" + std::to_string(family);
    result.wall_ms = on.cold.total_seconds * 1e3;
    result.counters = {
        {"optimizer_off_ms", off.cold.total_seconds * 1e3},
        {"warm_ms", on.warm.total_seconds * 1e3},
        {"warm_optimizer_off_ms", off.warm.total_seconds * 1e3},
        {"warm_speedup", on.warm.total_seconds > 0
                             ? off.warm.total_seconds / on.warm.total_seconds
                             : 0.0},
        {"repaired", static_cast<double>(on.cold.total_repaired)},
        {"repaired_off", static_cast<double>(off.cold.total_repaired)},
        {"registry_detect_ops", detect_ops},
        {"registry_repairs", registry_repairs},
        {"registry_delta_rows_checked", delta_rows}};
    result.config = {{"rows", std::to_string(config.num_rows)},
                     {"queries", "10 cold + 50 warm"},
                     {"optimizer", "on (counters: off leg)"}};
    json.Add(std::move(result));
  }
  PrintCumulative({"Q1", "Q2", "Q3"}, series);
  return 0;
}
