// Figure 13: complex SSB-family queries (Q1 / Q2 / Q3 ladder).
//
// Paper setup: Q1 joins lineorder with supplier under a suppkey range
// filter; Q2 additionally joins part and date and groups by year and
// brand; Q3 adds a fourth join with customer. All project the
// (probabilistic) keys. 10 queries per family over the same engine state.
//
// Expected shape (paper): response time grows modestly with query
// complexity — cleaning is pushed down to the lineorder/supplier join, so
// the extra joins add plain query cost only.

#include "bench/bench_util.h"
#include "datagen/ssb.h"

using namespace daisy;
using namespace daisy::bench;

namespace {

void BuildDatabase(Database* db, const SsbConfig& config) {
  CheckOk(db->AddTable(GenerateLineorder(config).dirty), "lineorder");
  CheckOk(db->AddTable(GenerateSupplier(config.distinct_suppkeys * 5,
                                        config.distinct_suppkeys, 0.5, 0.3, 5)
                           .dirty),
          "supplier");
  CheckOk(db->AddTable(GeneratePart(config.distinct_partkeys, 3)), "part");
  CheckOk(db->AddTable(GenerateDate(config.distinct_dates, 3)), "date");
  CheckOk(db->AddTable(GenerateCustomer(config.distinct_custkeys, 3)),
          "customer");
}

std::string Q1(int lo, int hi) {
  char sql[512];
  std::snprintf(sql, sizeof(sql),
                "SELECT lineorder.orderkey, lineorder.suppkey, supplier.name "
                "FROM lineorder, supplier "
                "WHERE lineorder.suppkey = supplier.suppkey AND "
                "lineorder.suppkey >= %d AND lineorder.suppkey <= %d",
                lo, hi);
  return sql;
}

std::string Q2(int lo, int hi) {
  char sql[768];
  std::snprintf(
      sql, sizeof(sql),
      "SELECT date.year, part.brand, SUM(lineorder.revenue) AS rev "
      "FROM lineorder, supplier, part, date "
      "WHERE lineorder.suppkey = supplier.suppkey AND "
      "lineorder.partkey = part.partkey AND "
      "lineorder.orderdate = date.datekey AND "
      "lineorder.suppkey >= %d AND lineorder.suppkey <= %d "
      "GROUP BY date.year, part.brand",
      lo, hi);
  return sql;
}

std::string Q3(int lo, int hi) {
  char sql[1024];
  std::snprintf(
      sql, sizeof(sql),
      "SELECT date.year, customer.nation, SUM(lineorder.revenue) AS rev "
      "FROM lineorder, supplier, part, date, customer "
      "WHERE lineorder.suppkey = supplier.suppkey AND "
      "lineorder.partkey = part.partkey AND "
      "lineorder.orderdate = date.datekey AND "
      "lineorder.custkey = customer.custkey AND "
      "lineorder.suppkey >= %d AND lineorder.suppkey <= %d "
      "GROUP BY date.year, customer.nation",
      lo, hi);
  return sql;
}

}  // namespace

int main() {
  WarmupHeap();
  SsbConfig config;
  config.num_rows = 6000;
  config.distinct_orderkeys = 300;
  config.distinct_suppkeys = 40;
  config.violating_fraction = 0.8;
  config.error_rate = 0.1;

  std::printf("# Figure 13: SSB query-complexity ladder, cumulative time\n");
  std::vector<std::vector<double>> series;
  for (int family = 1; family <= 3; ++family) {
    Database db;
    BuildDatabase(&db, config);
    ConstraintSet rules;
    CheckOk(rules.AddFromText("phi: FD orderkey -> suppkey", "lineorder",
                              db.GetTable("lineorder").ValueOrDie()->schema()),
            "phi");
    CheckOk(rules.AddFromText("psi: FD address -> suppkey", "supplier",
                              db.GetTable("supplier").ValueOrDie()->schema()),
            "psi");
    DaisyEngine engine(&db, std::move(rules), DaisyOptions{});
    CheckOk(engine.Prepare(), "prepare");

    std::vector<std::string> queries;
    for (int q = 0; q < 10; ++q) {
      const int lo = q * 4;
      const int hi = lo + 3;
      queries.push_back(family == 1 ? Q1(lo, hi)
                                    : family == 2 ? Q2(lo, hi) : Q3(lo, hi));
    }
    DaisyRun run = RunDaisyWorkload(&engine, queries);
    series.push_back(run.per_query_seconds);
  }
  PrintCumulative({"Q1", "Q2", "Q3"}, series);
  return 0;
}
