// Ingest-delta bench: delta detection vs full re-detection on the
// theta-join workload.
//
// Setup: a 50k-row salary/tax relation under the order DC
// ¬(t1.salary < t2.salary ∧ t1.tax > t2.tax), fully checked, then an
// append batch of {100, 1k, 10k} rows. Before this PR any append
// invalidated the detector state wholesale, so the post-ingest query paid
// a full re-detection over n+d rows; DetectDelta pays only the
// new x old + new x new partial theta-join with pairwise partition
// pruning. Both paths must produce the identical violation set (checked
// here per batch).
//
// Output: one line per batch size with both wall times, the checked-pair
// counts, and the speedup.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "detect/theta_join.h"

using namespace daisy;
using namespace daisy::bench;

namespace {

constexpr size_t kBaseRows = 50000;
constexpr size_t kPartitions = 64;
constexpr double kErrorFraction = 0.001;

void FillRow(Rng* rng, std::vector<Value>* row) {
  const double salary = rng->UniformDouble(1000, 100000);
  double tax = salary / 200000.0;
  if (rng->Bernoulli(kErrorFraction)) tax += rng->UniformDouble(0.1, 0.5);
  row->clear();
  row->push_back(Value(salary));
  row->push_back(Value(tax));
}

Table BaseTable(uint64_t seed) {
  Rng rng(seed);
  Table t("emp", Schema({{"salary", ValueType::kDouble},
                         {"tax", ValueType::kDouble}}));
  t.Reserve(kBaseRows);
  std::vector<Value> row;
  for (size_t i = 0; i < kBaseRows; ++i) {
    FillRow(&rng, &row);
    CheckOk(t.AppendRow(row), "append base row");
  }
  return t;
}

std::vector<std::vector<Value>> Batch(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<std::vector<Value>> rows(n);
  for (size_t i = 0; i < n; ++i) FillRow(&rng, &rows[i]);
  return rows;
}

std::vector<ViolationPair> Sorted(std::vector<ViolationPair> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

int main() {
  WarmupHeap();
  BenchJsonWriter json("ingest_delta");
  std::printf("# Ingest delta: DetectDelta vs full re-detection "
              "(base=%zu rows, p=%zu, dc=salary/tax)\n",
              kBaseRows, kPartitions);
  std::printf("# %-8s %12s %12s %14s %14s %9s\n", "append", "delta_s",
              "full_s", "delta_pairs", "full_pairs", "speedup");

  const char* kRule = "dc: !(t1.salary < t2.salary & t1.tax > t2.tax)";
  for (size_t batch_size : {size_t{100}, size_t{1000}, size_t{10000}}) {
    // Delta path: warm detector over the base, then pay only the batch.
    Table delta_table = BaseTable(7);
    Schema schema = delta_table.schema();
    auto dc = UnwrapOrDie(ParseConstraint(kRule, "emp", schema), "parse dc");
    ThetaJoinDetector maintained(&delta_table, &dc, kPartitions);
    (void)maintained.DetectAll();
    TableDelta delta = UnwrapOrDie(
        delta_table.AppendRows(Batch(100 + batch_size, batch_size)),
        "append batch");

    Timer delta_timer;
    (void)maintained.DetectDelta(delta);
    const double delta_s = delta_timer.ElapsedSeconds();
    const size_t delta_pairs = maintained.pairs_checked();

    // Full path: what the pre-delta engine paid — re-detection from
    // scratch over the grown table.
    Table full_table = delta_table;
    ThetaJoinDetector scratch(&full_table, &dc, kPartitions);
    Timer full_timer;
    std::vector<ViolationPair> full = scratch.DetectAll();
    const double full_s = full_timer.ElapsedSeconds();
    const size_t full_pairs = scratch.pairs_checked();

    // Identical violation sets or the comparison is meaningless.
    if (maintained.maintained_violations() != Sorted(std::move(full))) {
      std::fprintf(stderr, "[bench] violation sets diverged at d=%zu\n",
                   batch_size);
      return 1;
    }

    std::printf("  %-8zu %12.4f %12.4f %14zu %14zu %8.1fx\n", batch_size,
                delta_s, full_s, delta_pairs, full_pairs,
                delta_s > 0 ? full_s / delta_s : 0.0);

    BenchResult result;
    result.name = "append_" + std::to_string(batch_size);
    result.wall_ms = delta_s * 1e3;
    result.counters = {{"full_ms", full_s * 1e3},
                       {"delta_pairs", static_cast<double>(delta_pairs)},
                       {"full_pairs", static_cast<double>(full_pairs)},
                       {"speedup", delta_s > 0 ? full_s / delta_s : 0.0}};
    result.config = {{"base_rows", std::to_string(kBaseRows)},
                     {"partitions", std::to_string(kPartitions)},
                     {"rule", kRule}};
    json.Add(std::move(result));
  }
  return 0;
}
