// Table 7: incremental rule arrival with provenance reuse.
//
// Scenario: rules arrive one at a time (ϕ1, then ϕ2, then ϕ3) while the
// user queries the whole dataset. Compared strategies:
//  * "3 executions": each arrival re-cleans from the original data with
//    the full rule set so far (throwing earlier fixes away);
//  * "1 execution": one engine keeps its provenance and only cleans the
//    newly arrived rule, merging fixes commutatively (Lemma 4);
//  * HoloClean-sim: three full runs (its pipeline has no fix reuse).
//
// Expected shape (paper): the single provenance-reusing execution is
// substantially cheaper than the three re-executions; HoloClean is far
// above both.

#include "bench/bench_util.h"
#include "datagen/realworld.h"
#include "holo/holoclean_sim.h"

using namespace daisy;
using namespace daisy::bench;

namespace {

const char* kRules[] = {"phi1: FD zip -> city",
                        "phi2: FD hospital_name -> zip",
                        "phi3: FD phone -> zip"};

ConstraintSet FirstN(const Schema& schema, size_t count) {
  ConstraintSet rules;
  for (size_t i = 0; i < count; ++i) {
    CheckOk(rules.AddFromText(kRules[i], "hospital", schema), kRules[i]);
  }
  return rules;
}

ConstraintSet Only(const Schema& schema, size_t index) {
  ConstraintSet rules;
  CheckOk(rules.AddFromText(kRules[index], "hospital", schema),
          kRules[index]);
  return rules;
}

}  // namespace

int main() {
  WarmupHeap();
  HospitalConfig config;
  config.num_rows = 2000;
  config.num_hospitals = 80;
  config.cell_error_rate = 0.05;

  std::printf("# Table 7: rule arrival — re-execution vs provenance reuse\n");
  std::printf("# %-22s %10s %10s %10s %10s\n", "strategy", "phi1", "+phi2",
              "+phi3", "total");

  // --- Daisy, three separate executions (reset between rule sets). -------
  {
    double step_seconds[3];
    double total = 0;
    for (size_t step = 1; step <= 3; ++step) {
      GeneratedData data = GenerateHospital(config);
      Database db;
      const Schema schema = data.dirty.schema();
      CheckOk(db.AddTable(std::move(data.dirty)), "add");
      Timer t;
      DaisyEngine engine(&db, FirstN(schema, step), DaisyOptions{});
      CheckOk(engine.Prepare(), "prepare");
      CheckOk(engine.CleanAllRemaining(), "clean");
      step_seconds[step - 1] = t.ElapsedSeconds();
      total += step_seconds[step - 1];
    }
    std::printf("  %-22s %10.3f %10.3f %10.3f %10.3f\n",
                "daisy_3_executions", step_seconds[0], step_seconds[1],
                step_seconds[2], total);
  }

  // --- Daisy, one execution: provenance persists, only the new rule runs.
  {
    GeneratedData data = GenerateHospital(config);
    Database db;
    const Schema schema = data.dirty.schema();
    CheckOk(db.AddTable(std::move(data.dirty)), "add");
    double step_seconds[3];
    double total = 0;
    ProvenanceStore carried;  // fixes survive across rule arrivals
    for (size_t step = 0; step < 3; ++step) {
      // Only the newly arrived rule is cleaned; earlier fixes are merged
      // back in commutatively (Lemma 4) through the carried provenance.
      Timer t;
      DaisyEngine engine(&db, Only(schema, step), DaisyOptions{});
      CheckOk(engine.Prepare(), "prepare");
      CheckOk(engine.ImportProvenance("hospital", carried), "import");
      CheckOk(engine.CleanAllRemaining(), "clean");
      carried = *engine.provenance("hospital");
      step_seconds[step] = t.ElapsedSeconds();
      total += step_seconds[step];
    }
    std::printf("  %-22s %10.3f %10.3f %10.3f %10.3f\n",
                "daisy_1_execution", step_seconds[0], step_seconds[1],
                step_seconds[2], total);
  }

  // --- HoloClean-sim, three runs. ----------------------------------------
  {
    double step_seconds[3];
    double total = 0;
    for (size_t step = 1; step <= 3; ++step) {
      GeneratedData data = GenerateHospital(config);
      ConstraintSet rules = FirstN(data.dirty.schema(), step);
      Timer t;
      HoloCleanSim sim(&data.dirty, &rules, HoloOptions{});
      (void)UnwrapOrDie(sim.Run(), "holo");
      step_seconds[step - 1] = t.ElapsedSeconds();
      total += step_seconds[step - 1];
    }
    std::printf("  %-22s %10.3f %10.3f %10.3f %10.3f\n", "holoclean",
                step_seconds[0], step_seconds[1], step_seconds[2], total);
  }
  return 0;
}
