// Operator-level microbenchmarks (google-benchmark): relaxation, FD
// detection, theta-join detection with/without partition pruning
// (ablation), FD repair, probabilistic filtering, and provenance merging.

#include <benchmark/benchmark.h>

#include "clean/statistics.h"
#include "common/rng.h"
#include "datagen/ssb.h"
#include "detect/fd_detector.h"
#include "detect/theta_join.h"
#include "plan/planner.h"
#include "query/eval.h"
#include "query/parser.h"
#include "relax/relaxation.h"
#include "repair/fd_repair.h"
#include "storage/database.h"

namespace daisy {
namespace {

Table MakeLineorder(size_t rows, size_t orderkeys, size_t suppkeys) {
  SsbConfig config;
  config.num_rows = rows;
  config.distinct_orderkeys = orderkeys;
  config.distinct_suppkeys = suppkeys;
  return GenerateLineorder(config).dirty;
}

DenialConstraint OrderFd(const Table& t) {
  return ParseConstraint("phi: FD orderkey -> suppkey", t.name(), t.schema())
      .ValueOrDie();
}

void BM_RelaxFdResult(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Table t = MakeLineorder(rows, rows / 20, 50);
  DenialConstraint dc = OrderFd(t);
  std::vector<RowId> answer;
  for (RowId r = 0; r < rows / 50; ++r) answer.push_back(r);
  for (auto _ : state) {
    RelaxResult res = RelaxFdResult(t, dc, answer);
    benchmark::DoNotOptimize(res.extra.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_RelaxFdResult)->Arg(1000)->Arg(10000)->Arg(50000);

// Row path vs. columnar path: FD detection via per-cell Value hashing
// against the dictionary-code group-by.
void BM_FdDetection(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const bool columnar = state.range(1) != 0;
  Table t = MakeLineorder(rows, rows / 20, 50);
  DenialConstraint dc = OrderFd(t);
  const std::vector<RowId> all = t.AllRowIds();
  (void)DetectFdViolations(t, dc, all);  // build the column cache once
  for (auto _ : state) {
    auto groups = columnar ? DetectFdViolations(t, dc, all)
                           : DetectFdViolationsRowPath(t, dc, all);
    benchmark::DoNotOptimize(groups.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
  state.SetLabel(columnar ? "columnar" : "row-path");
}
BENCHMARK(BM_FdDetection)
    ->Args({1000, 1})
    ->Args({1000, 0})
    ->Args({10000, 1})
    ->Args({10000, 0})
    ->Args({50000, 1})
    ->Args({50000, 0});

Table MakeSalaryTable(size_t rows, double error_fraction) {
  Rng rng(99);
  Table t("emp", Schema({{"salary", ValueType::kDouble},
                         {"tax", ValueType::kDouble}}));
  for (size_t i = 0; i < rows; ++i) {
    const double salary = rng.UniformDouble(1000, 100000);
    double tax = salary / 200000.0;
    if (rng.Bernoulli(error_fraction)) tax += rng.UniformDouble(0.1, 0.4);
    (void)t.AppendRow({Value(salary), Value(tax)});
  }
  return t;
}

// Ablation: partitioned theta-join with and without boundary pruning.
void BM_ThetaJoinDetectAll(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const bool pruning = state.range(1) != 0;
  Table t = MakeSalaryTable(rows, 0.02);
  auto dc = ParseConstraint("dc: !(t1.salary < t2.salary & t1.tax > t2.tax)",
                            "emp", t.schema())
                .ValueOrDie();
  for (auto _ : state) {
    ThetaJoinDetector detector(&t, &dc, 32);
    detector.set_pruning_enabled(pruning);
    auto v = detector.DetectAll();
    benchmark::DoNotOptimize(v.size());
  }
  state.SetLabel(pruning ? "pruned" : "unpruned");
}
BENCHMARK(BM_ThetaJoinDetectAll)
    ->Args({500, 1})
    ->Args({500, 0})
    ->Args({2000, 1})
    ->Args({2000, 0});

void BM_ThetaJoinIncremental(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Table t = MakeSalaryTable(rows, 0.02);
  auto dc = ParseConstraint("dc: !(t1.salary < t2.salary & t1.tax > t2.tax)",
                            "emp", t.schema())
                .ValueOrDie();
  std::vector<RowId> result;
  for (RowId r = 0; r < rows / 10; ++r) result.push_back(r);
  for (auto _ : state) {
    ThetaJoinDetector detector(&t, &dc, 32);
    auto v = detector.DetectIncremental(result);
    benchmark::DoNotOptimize(v.size());
  }
}
BENCHMARK(BM_ThetaJoinIncremental)->Arg(1000)->Arg(4000);

// Row path vs. columnar path on the 50k-row theta-join workload: one
// incremental detection pass (a 1k-row query answer against the unseen
// rest) with pair checks either through the compiled flat arrays or
// through per-cell Value dispatch (DenialConstraint::ViolatedBy).
void BM_ThetaJoin50kRowVsColumnar(benchmark::State& state) {
  const bool columnar = state.range(0) != 0;
  const size_t rows = 50000;
  Table t = MakeSalaryTable(rows, 0.02);
  auto dc = ParseConstraint("dc: !(t1.salary < t2.salary & t1.tax > t2.tax)",
                            "emp", t.schema())
                .ValueOrDie();
  std::vector<RowId> result;
  for (RowId r = 0; r < rows / 50; ++r) result.push_back(r);
  (void)t.columns().column(0);
  (void)t.columns().column(1);
  size_t pairs = 0;
  for (auto _ : state) {
    ThetaJoinDetector detector(&t, &dc, 32);
    detector.set_columnar_enabled(columnar);
    auto v = detector.DetectIncremental(result);
    benchmark::DoNotOptimize(v.size());
    pairs = detector.pairs_checked();
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.SetLabel(columnar ? "columnar" : "row-path");
}
BENCHMARK(BM_ThetaJoin50kRowVsColumnar)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

// DetectAll worker-pool scaling on the flat layout (deterministic merge).
void BM_ThetaJoinParallelDetectAll(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  Table t = MakeSalaryTable(4000, 0.02);
  auto dc = ParseConstraint("dc: !(t1.salary < t2.salary & t1.tax > t2.tax)",
                            "emp", t.schema())
                .ValueOrDie();
  for (auto _ : state) {
    ThetaJoinDetector detector(&t, &dc, 32, threads);
    auto v = detector.DetectAll();
    benchmark::DoNotOptimize(v.size());
  }
  state.SetLabel("threads=" + std::to_string(threads));
}
BENCHMARK(BM_ThetaJoinParallelDetectAll)->Arg(1)->Arg(2)->Arg(4);

// Estimate_Errors: binary-searched range counts over the per-partition
// sorted projections (was a linear partition rescan per atom pair).
void BM_EstimateErrors(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Table t = MakeSalaryTable(rows, 0.1);
  auto dc = ParseConstraint("dc: !(t1.salary < t2.salary & t1.tax > t2.tax)",
                            "emp", t.schema())
                .ValueOrDie();
  for (auto _ : state) {
    ThetaJoinDetector detector(&t, &dc, 64);
    const auto& est = detector.EstimateErrors();
    benchmark::DoNotOptimize(est.size());
  }
}
BENCHMARK(BM_EstimateErrors)->Arg(10000)->Arg(50000);

void BM_FdRepair(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Table t = MakeLineorder(rows, rows / 20, 50);
    DenialConstraint dc = OrderFd(t);
    ProvenanceStore prov;
    state.ResumeTiming();
    auto stats = RepairFdViolations(&t, dc, t.AllRowIds(), &prov);
    benchmark::DoNotOptimize(stats.ok());
  }
}
BENCHMARK(BM_FdRepair)->Arg(1000)->Arg(10000);

void BM_ProbabilisticFilter(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Table t = MakeLineorder(rows, rows / 20, 50);
  DenialConstraint dc = OrderFd(t);
  ProvenanceStore prov;
  (void)RepairFdViolations(&t, dc, t.AllRowIds(), &prov);
  auto stmt =
      ParseQuery("SELECT * FROM lineorder WHERE suppkey >= 10 AND suppkey <= 20")
          .ValueOrDie();
  const std::vector<RowId> all = t.AllRowIds();
  for (auto _ : state) {
    auto rows_out = FilterRows(t, stmt.where.get(), all);
    benchmark::DoNotOptimize(rows_out.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_ProbabilisticFilter)->Arg(1000)->Arg(10000);

// Row path vs. columnar path on the plan layer's filter/scan: a 50k-row SP
// workload (range predicate over most-probable-dense columns) executed
// through the Planner with the compiled ColumnCache filter against the
// per-row Value evaluator (the new fast path's recorded baseline, like
// detection's row-vs-columnar numbers).
void BM_PlanFilterScan50kRowVsColumnar(benchmark::State& state) {
  const bool columnar = state.range(0) != 0;
  const size_t rows = 50000;
  Database db;
  (void)db.AddTable(MakeLineorder(rows, rows / 20, 50));
  auto stmt = ParseQuery(
                  "SELECT orderkey, suppkey FROM lineorder "
                  "WHERE suppkey >= 10 AND suppkey <= 20 AND orderkey != 77")
                  .ValueOrDie();
  Planner planner(&db);
  planner.set_columnar_filters(columnar);
  // Build the column cache once outside the timed region.
  Table* lineorder = db.GetTable("lineorder").ValueOrDie();
  const Schema& schema = lineorder->schema();
  (void)lineorder->columns().EnsureBuilt(
      {schema.ColumnIndex("orderkey").ValueOrDie(),
       schema.ColumnIndex("suppkey").ValueOrDie()});
  size_t out_rows = 0;
  for (auto _ : state) {
    auto plan = planner.PlanQuery(stmt).ValueOrDie();
    auto out = plan.Execute().ValueOrDie();
    benchmark::DoNotOptimize(out.result.num_rows());
    out_rows = out.result.num_rows();
  }
  state.counters["rows_out"] = static_cast<double>(out_rows);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
  state.SetLabel(columnar ? "columnar" : "row-path");
}
BENCHMARK(BM_PlanFilterScan50kRowVsColumnar)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_StatisticsCompute(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Database db;
  (void)db.AddTable(MakeLineorder(rows, rows / 20, 50));
  ConstraintSet rules;
  (void)rules.AddFromText("phi: FD orderkey -> suppkey", "lineorder",
                          db.GetTable("lineorder").ValueOrDie()->schema());
  for (auto _ : state) {
    Statistics stats;
    benchmark::DoNotOptimize(stats.Compute(db, rules).ok());
  }
}
BENCHMARK(BM_StatisticsCompute)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace daisy

BENCHMARK_MAIN();
