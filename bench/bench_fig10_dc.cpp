// Figure 10: general denial constraints with inequality conditions.
//
// Paper setup: DC ¬(t1.extended_price < t2.extended_price ∧ t1.discount >
// t2.discount) over lineorder; discount edits create 0.2% / 2% / 20%
// violation levels; 60 non-overlapping range queries. Series: Daisy vs
// offline total time, plus Daisy's repair coverage relative to offline
// (the paper's 99% / 80% / 100% accuracy) and whether the Algorithm-2
// accuracy estimate triggered the full-cleaning fallback.
//
// Expected shape (paper): Daisy ~1.3x faster at low violation rates via
// partition pruning; at 20% the estimate predicts low accuracy, Daisy
// cleans the whole matrix and matches offline's time with 100% coverage.

#include "bench/bench_util.h"
#include "datagen/ssb.h"
#include "datagen/workload.h"

using namespace daisy;
using namespace daisy::bench;

int main() {
  WarmupHeap();
  std::printf("# Figure 10: inequality-DC cleaning cost and coverage\n");
  std::printf("# %-8s %12s %12s %10s %10s %12s\n", "vio_pct", "offline_s",
              "daisy_s", "coverage", "est_acc", "fallback");
  const char* kRule =
      "dc: !(t1.extended_price < t2.extended_price & t1.discount > "
      "t2.discount)";
  for (double fraction : {0.002, 0.02, 0.2}) {
    SsbConfig config;
    config.num_rows = 2000;
    config.distinct_orderkeys = 200;
    config.violating_fraction = 0.0;  // no FD errors; DC errors only
    GeneratedData data = GenerateLineorder(config);
    (void)InjectDcErrors(&data.dirty, fraction, 0.5, 77);

    // Offline.
    Database offline_db;
    {
      Table copy = data.dirty;
      CheckOk(offline_db.AddTable(std::move(copy)), "add");
    }
    ConstraintSet rules;
    CheckOk(rules.AddFromText(kRule, "lineorder", data.dirty.schema()),
            "parse rule");
    auto queries = UnwrapOrDie(
        MakeNonOverlappingRangeQueries(
            *offline_db.GetTable("lineorder").ValueOrDie(), "extended_price",
            60, "extended_price, discount"),
        "workload");
    OfflineRun offline = RunOfflineWorkload(&offline_db, rules, queries);
    const size_t offline_cells =
        offline_db.GetTable("lineorder").ValueOrDie()
            ->CountProbabilisticCells();

    // Daisy.
    Database daisy_db;
    {
      Table copy = data.dirty;
      CheckOk(daisy_db.AddTable(std::move(copy)), "add");
    }
    DaisyOptions options;
    options.accuracy_threshold = 0.25;
    options.theta_partitions = 32;
    DaisyEngine engine(&daisy_db, CloneRules(rules), options);
    CheckOk(engine.Prepare(), "prepare");
    double min_acc = 1.0;
    bool fallback = false;
    Timer timer;
    for (const std::string& sql : queries) {
      QueryReport report = UnwrapOrDie(engine.Query(sql), sql.c_str());
      min_acc = std::min(min_acc, report.min_estimated_accuracy);
      fallback |= report.used_dc_full_clean;
    }
    const double daisy_seconds = timer.ElapsedSeconds();
    const size_t daisy_cells =
        daisy_db.GetTable("lineorder").ValueOrDie()->CountProbabilisticCells();
    const double coverage =
        offline_cells == 0
            ? 1.0
            : static_cast<double>(daisy_cells) /
                  static_cast<double>(offline_cells);

    std::printf("  %-8.1f %12.3f %12.3f %9.0f%% %10.2f %12s\n",
                fraction * 100, offline.total_seconds, daisy_seconds,
                coverage * 100, min_acc, fallback ? "full-clean" : "partial");
  }
  return 0;
}
