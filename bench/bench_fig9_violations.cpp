// Figure 9: cost with an increasing number of violations.
//
// Paper setup: 20% / 40% / 60% / 80% of the orderkeys violating, same 50
// non-overlapping 2% SP queries. Series: Daisy vs offline totals.
//
// Expected shape (paper): Daisy wins at every error rate and the gap
// *widens* with more violations — offline's traversal count scales with
// the number of dirty groups, while Daisy fetches the correlated tuples of
// many groups in one pass and prunes clean regions via its precomputed
// dirty-group statistics.

#include "bench/bench_util.h"
#include "datagen/ssb.h"
#include "datagen/workload.h"

using namespace daisy;
using namespace daisy::bench;

int main() {
  WarmupHeap();
  std::printf("# Figure 9: cost vs violation percentage\n");
  std::printf("# %-8s %14s %14s %14s %14s\n", "vio_pct", "full_clean_s",
              "offline_qry_s", "offline_total", "daisy_total_s");
  for (double fraction : {0.2, 0.4, 0.6, 0.8}) {
    SsbConfig config;
    config.num_rows = 10000;
    config.distinct_orderkeys = 2000;
    config.distinct_suppkeys = 50;
    config.violating_fraction = fraction;
    config.error_rate = 0.1;

    Database offline_db;
    CheckOk(offline_db.AddTable(GenerateLineorder(config).dirty), "add");
    ConstraintSet rules;
    CheckOk(rules.AddFromText(
                "phi: FD orderkey -> suppkey", "lineorder",
                offline_db.GetTable("lineorder").ValueOrDie()->schema()),
            "parse rule");
    auto queries = UnwrapOrDie(
        MakeNonOverlappingRangeQueries(
            *offline_db.GetTable("lineorder").ValueOrDie(), "orderkey", 50,
            "orderkey, suppkey"),
        "workload");
    OfflineRun offline = RunOfflineWorkload(&offline_db, rules, queries);

    Database daisy_db;
    CheckOk(daisy_db.AddTable(GenerateLineorder(config).dirty), "add");
    DaisyEngine engine(&daisy_db, CloneRules(rules), DaisyOptions{});
    CheckOk(engine.Prepare(), "prepare");
    DaisyRun daisy = RunDaisyWorkload(&engine, queries);

    std::printf("  %-8.0f %14.3f %14.3f %14.3f %14.3f\n", fraction * 100,
                offline.clean_seconds, offline.query_seconds,
                offline.total_seconds, daisy.total_seconds);
  }
  return 0;
}
