// Figure 11: SPJ (join) query workload.
//
// Paper setup: 50 join queries lineorder ⋈ supplier; lineorder violates
// ϕ: orderkey -> suppkey and supplier violates ψ: address -> suppkey; the
// filter sits on lineorder, the whole lineorder table is covered.
// Series: cumulative Daisy vs Full.
//
// Expected shape (paper): Daisy below Full throughout — correlated-tuple
// computation bounds the comparisons and the join result is updated
// incrementally, while offline pays a probabilistic join upfront.

#include "bench/bench_util.h"
#include "datagen/ssb.h"
#include "datagen/workload.h"

using namespace daisy;
using namespace daisy::bench;

namespace {

std::vector<std::string> JoinWorkload(const Table& lineorder,
                                      size_t num_queries) {
  auto ranges = UnwrapOrDie(
      MakeNonOverlappingRangeQueries(lineorder, "orderkey", num_queries,
                                     "orderkey"),
      "ranges");
  // Rewrite each SP range into an SPJ query with the supplier join.
  std::vector<std::string> queries;
  for (const std::string& sp : ranges) {
    const size_t where = sp.find("WHERE");
    std::string cond = sp.substr(where + 6);
    queries.push_back(
        "SELECT lineorder.orderkey, lineorder.suppkey, supplier.name "
        "FROM lineorder, supplier "
        "WHERE lineorder.suppkey = supplier.suppkey AND " +
        cond);
  }
  return queries;
}

void AddTables(Database* db, const SsbConfig& config) {
  CheckOk(db->AddTable(GenerateLineorder(config).dirty), "lineorder");
  CheckOk(db->AddTable(
              GenerateSupplier(config.distinct_suppkeys * 6,
                               config.distinct_suppkeys, 0.5, 0.3, 5)
                  .dirty),
          "supplier");
}

}  // namespace

int main() {
  WarmupHeap();
  SsbConfig config;
  config.num_rows = 8000;
  config.distinct_orderkeys = 400;
  config.distinct_suppkeys = 40;
  config.violating_fraction = 0.8;
  config.error_rate = 0.1;

  Database daisy_db;
  AddTables(&daisy_db, config);
  ConstraintSet rules;
  CheckOk(rules.AddFromText("phi: FD orderkey -> suppkey", "lineorder",
                            daisy_db.GetTable("lineorder").ValueOrDie()
                                ->schema()),
          "phi");
  CheckOk(rules.AddFromText("psi: FD address -> suppkey", "supplier",
                            daisy_db.GetTable("supplier").ValueOrDie()
                                ->schema()),
          "psi");
  auto queries =
      JoinWorkload(*daisy_db.GetTable("lineorder").ValueOrDie(), 50);

  DaisyEngine engine(&daisy_db, CloneRules(rules), DaisyOptions{});
  CheckOk(engine.Prepare(), "prepare");
  DaisyRun daisy = RunDaisyWorkload(&engine, queries);

  Database offline_db;
  AddTables(&offline_db, config);
  OfflineRun offline = RunOfflineWorkload(&offline_db, rules, queries);
  std::vector<double> full_series = offline.per_query_seconds;
  if (!full_series.empty()) full_series[0] += offline.clean_seconds;

  std::printf("# Figure 11: SPJ workload, cumulative time\n");
  PrintCumulative({"daisy", "full"},
                  {daisy.per_query_seconds, full_series});
  std::printf("# totals: daisy=%.3f full=%.3f (daisy repaired %zu tuples)\n",
              daisy.total_seconds, offline.total_seconds,
              daisy.total_repaired);

  BenchJsonWriter json("fig11_spj");
  BenchResult result;
  result.name = "spj_50_queries";
  result.wall_ms = daisy.total_seconds * 1e3;
  result.counters = {
      {"offline_ms", offline.total_seconds * 1e3},
      {"offline_clean_ms", offline.clean_seconds * 1e3},
      {"repaired", static_cast<double>(daisy.total_repaired)},
      {"switch_query", static_cast<double>(daisy.switch_query)}};
  result.config = {{"rows", std::to_string(config.num_rows)},
                   {"queries", "50"}};
  json.Add(std::move(result));
  return 0;
}
