// Figure 12: mixed SP + SPJ workload with the cost-model switch.
//
// Paper setup: the Fig. 7 scenario (100K-orderkey lineorder, 500 distinct
// suppkeys — scaled down proportionally) with 90 mixed queries: SP on
// lineorder plus joins with supplier; both tables dirty. Series: Daisy w/o
// cost model, Full, Daisy.
//
// Expected shape (paper): Daisy predicts around a third into the workload
// that finishing the cleaning wholesale is cheaper, penalizes one query,
// and ends below both alternatives.

#include "bench/bench_util.h"
#include "datagen/ssb.h"
#include "datagen/workload.h"

using namespace daisy;
using namespace daisy::bench;

namespace {

void AddTables(Database* db, const SsbConfig& config) {
  CheckOk(db->AddTable(GenerateLineorder(config).dirty), "lineorder");
  CheckOk(db->AddTable(GenerateSupplier(300, config.distinct_suppkeys, 0.5,
                                        0.3, 5)
                           .dirty),
          "supplier");
}

std::vector<std::string> MixedWorkload(const Table& lineorder) {
  auto sp = UnwrapOrDie(
      MakeRandomSelectivityQueries(lineorder, "orderkey", 90, 29,
                                   "orderkey, suppkey"),
      "sp workload");
  // Every third query becomes a join.
  std::vector<std::string> queries;
  for (size_t i = 0; i < sp.size(); ++i) {
    if (i % 3 != 2) {
      queries.push_back(sp[i]);
      continue;
    }
    const size_t where = sp[i].find("WHERE");
    queries.push_back(
        "SELECT lineorder.orderkey, supplier.name FROM lineorder, supplier "
        "WHERE lineorder.suppkey = supplier.suppkey AND " +
        sp[i].substr(where + 6));
  }
  return queries;
}

}  // namespace

int main() {
  WarmupHeap();
  SsbConfig config;
  config.num_rows = 12000;
  config.distinct_orderkeys = 2000;
  config.distinct_suppkeys = 25;
  config.violating_fraction = 1.0;
  config.error_rate = 0.2;
  config.error_style = SsbErrorStyle::kInDomain;

  ConstraintSet rules;
  {
    Database probe;
    AddTables(&probe, config);
    CheckOk(rules.AddFromText(
                "phi: FD orderkey -> suppkey", "lineorder",
                probe.GetTable("lineorder").ValueOrDie()->schema()),
            "phi");
    CheckOk(rules.AddFromText(
                "psi: FD address -> suppkey", "supplier",
                probe.GetTable("supplier").ValueOrDie()->schema()),
            "psi");
  }

  Database wl_db;
  AddTables(&wl_db, config);
  auto queries = MixedWorkload(*wl_db.GetTable("lineorder").ValueOrDie());

  Database incr_db;
  AddTables(&incr_db, config);
  DaisyOptions incr_opts;
  incr_opts.mode = DaisyOptions::Mode::kIncremental;
  DaisyEngine incr(&incr_db, CloneRules(rules), incr_opts);
  CheckOk(incr.Prepare(), "prepare");
  DaisyRun incr_run = RunDaisyWorkload(&incr, queries);

  Database full_db;
  AddTables(&full_db, config);
  OfflineRun full = RunOfflineWorkload(&full_db, rules, queries);
  std::vector<double> full_series = full.per_query_seconds;
  if (!full_series.empty()) full_series[0] += full.clean_seconds;

  Database adapt_db;
  AddTables(&adapt_db, config);
  DaisyOptions adapt_opts;
  adapt_opts.mode = DaisyOptions::Mode::kAdaptive;
  DaisyEngine adapt(&adapt_db, CloneRules(rules), adapt_opts);
  CheckOk(adapt.Prepare(), "prepare");
  DaisyRun adapt_run = RunDaisyWorkload(&adapt, queries);

  std::printf("# Figure 12: mixed SP+SPJ workload, cumulative time\n");
  std::printf("# Daisy switched to full cleaning at query %zu\n",
              adapt_run.switch_query);
  PrintCumulative({"daisy_wo_cost", "full", "daisy"},
                  {incr_run.per_query_seconds, full_series,
                   adapt_run.per_query_seconds});
  std::printf("# totals: daisy_wo_cost=%.3f full=%.3f daisy=%.3f\n",
              incr_run.total_seconds, full.total_seconds,
              adapt_run.total_seconds);
  return 0;
}
