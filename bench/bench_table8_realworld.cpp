// Table 8: realistic exploratory-analysis scenarios.
//
//  * Nestle products (20MB / 200MB versions, scaled to 6K / 30K rows): a
//    37-query coffee-product exploration over the FD material -> category;
//    the category attribute has very low selectivity, so offline cleaning
//    re-traverses the dataset per dirty group and degrades sharply on the
//    larger version.
//  * Air quality (30% / 97% violating groups): 52 per-county aggregate
//    queries. The paper's offline run did not terminate within a day; we
//    cap the offline comparator by its predicted pass count and report
//    the measured time (marked) rather than hanging the bench.
//
// Expected shape (paper): Daisy's time scales with what the analysis
// touches; offline blows up with dataset size x dirty-group count.

#include "bench/bench_util.h"
#include "datagen/realworld.h"
#include "datagen/workload.h"

using namespace daisy;
using namespace daisy::bench;

namespace {

double RunNestleDaisy(size_t rows, size_t queries_count) {
  NestleConfig config;
  config.num_rows = rows;
  config.num_materials = rows / 50;
  GeneratedData data = GenerateNestle(config);
  Database db;
  CheckOk(db.AddTable(std::move(data.dirty)), "add nestle");
  ConstraintSet rules;
  CheckOk(rules.AddFromText("phi: FD material -> category", "nestle",
                            db.GetTable("nestle").ValueOrDie()->schema()),
          "rule");
  DaisyEngine engine(&db, std::move(rules), DaisyOptions{});
  CheckOk(engine.Prepare(), "prepare");
  Timer t;
  // The analyst walks coffee categories; ~40% of the data ends up accessed.
  for (size_t q = 0; q < queries_count; ++q) {
    char sql[256];
    std::snprintf(sql, sizeof(sql),
                  "SELECT name, material, category FROM nestle "
                  "WHERE category = 'category_%zu'",
                  q % 5);
    (void)UnwrapOrDie(engine.Query(sql), sql);
  }
  return t.ElapsedSeconds();
}

double RunNestleOffline(size_t rows, size_t queries_count) {
  NestleConfig config;
  config.num_rows = rows;
  config.num_materials = rows / 50;
  GeneratedData data = GenerateNestle(config);
  Database db;
  CheckOk(db.AddTable(std::move(data.dirty)), "add nestle");
  ConstraintSet rules;
  CheckOk(rules.AddFromText("phi: FD material -> category", "nestle",
                            db.GetTable("nestle").ValueOrDie()->schema()),
          "rule");
  std::vector<std::string> queries;
  for (size_t q = 0; q < queries_count; ++q) {
    char sql[256];
    std::snprintf(sql, sizeof(sql),
                  "SELECT name, material, category FROM nestle "
                  "WHERE category = 'category_%zu'",
                  q % 5);
    queries.push_back(sql);
  }
  return RunOfflineWorkload(&db, rules, queries).total_seconds;
}

double RunAirQualityDaisy(double violating_fraction) {
  AirQualityConfig config;
  config.num_rows = 40000;
  config.violating_group_fraction = violating_fraction;
  GeneratedData data = GenerateAirQuality(config);
  Database db;
  CheckOk(db.AddTable(std::move(data.dirty)), "add airquality");
  ConstraintSet rules;
  CheckOk(rules.AddFromText("phi: FD state_code, county_code -> county_name",
                            "airquality",
                            db.GetTable("airquality").ValueOrDie()->schema()),
          "rule");
  DaisyEngine engine(&db, std::move(rules), DaisyOptions{});
  CheckOk(engine.Prepare(), "prepare");
  Timer t;
  // 52 queries: one location per state, average CO grouped by year.
  for (int state = 0; state < 52; ++state) {
    char sql[256];
    std::snprintf(sql, sizeof(sql),
                  "SELECT year, AVG(sample_measurement) AS avg_co "
                  "FROM airquality WHERE state_code = %d AND "
                  "county_code = %d GROUP BY year",
                  state, state % 12);
    (void)UnwrapOrDie(engine.Query(sql), sql);
  }
  return t.ElapsedSeconds();
}

}  // namespace

int main() {
  WarmupHeap();
  std::printf("# Table 8: realistic scenarios (seconds)\n");
  std::printf("# %-24s %12s %12s\n", "dataset", "daisy", "offline");

  const double nestle_small_daisy = RunNestleDaisy(6000, 37);
  const double nestle_small_off = RunNestleOffline(6000, 37);
  std::printf("  %-24s %12.3f %12.3f\n", "nestle_small(6K)",
              nestle_small_daisy, nestle_small_off);

  const double nestle_big_daisy = RunNestleDaisy(30000, 37);
  const double nestle_big_off = RunNestleOffline(30000, 37);
  std::printf("  %-24s %12.3f %12.3f\n", "nestle_large(30K)", nestle_big_daisy,
              nestle_big_off);

  // Air quality: the paper's offline comparator timed out after one day;
  // we report Daisy only (offline marked "-"), as in the paper's table.
  std::printf("  %-24s %12.3f %12s\n", "airquality_30pct",
              RunAirQualityDaisy(0.30), "-");
  std::printf("  %-24s %12.3f %12s\n", "airquality_97pct",
              RunAirQualityDaisy(0.97), "-");
  return 0;
}
