// Table 5: repair accuracy on the hospital dataset (1K version with ground
// truth): precision / recall / F1 for HoloClean, DaisyH (HoloClean
// inference over Daisy's domains), and DaisyP (most probable candidate)
// as the rule set grows (ϕ1, ϕ1+ϕ2, ϕ1+ϕ2+ϕ3).
//
// Expected shape (paper): with only ϕ1 known HoloClean's statistical
// domains win; once more rules are known DaisyH matches or beats
// HoloClean (no threshold pruning of the domain); DaisyP trails as it
// picks blindly.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/metrics.h"
#include "datagen/realworld.h"
#include "holo/holoclean_sim.h"

using namespace daisy;
using namespace daisy::bench;

namespace {

ConstraintSet RuleSubset(const Schema& schema, size_t count) {
  static const char* kRules[] = {"phi1: FD zip -> city",
                                 "phi2: FD hospital_name -> zip",
                                 "phi3: FD phone -> zip"};
  ConstraintSet rules;
  for (size_t i = 0; i < count; ++i) {
    CheckOk(rules.AddFromText(kRules[i], "hospital", schema), kRules[i]);
  }
  return rules;
}

void PrintRow(size_t nrules, const char* policy, const AccuracyMetrics& m) {
  std::printf("  phi1..phi%zu %-10s %10.2f %10.2f %10.2f\n", nrules, policy,
              m.precision(), m.recall(), m.f1());
}

}  // namespace

int main() {
  WarmupHeap();
  HospitalConfig config;
  config.num_rows = 1000;
  config.num_hospitals = 50;
  config.cell_error_rate = 0.05;

  std::printf("# Table 5: hospital repair accuracy\n");
  std::printf("# %-10s %-10s %10s %10s %10s\n", "rules", "policy",
              "precision", "recall", "F1");
  for (size_t nrules = 1; nrules <= 3; ++nrules) {
    {  // HoloClean simulator.
      GeneratedData data = GenerateHospital(config);
      ConstraintSet rules = RuleSubset(data.dirty.schema(), nrules);
      HoloCleanSim sim(&data.dirty, &rules, HoloOptions{});
      auto repairs = UnwrapOrDie(sim.Run(), "holo run");
      PrintRow(nrules, "holoclean",
               UnwrapOrDie(EvaluateCellRepairs(data.dirty, data.truth,
                                               repairs),
                           "metrics"));
    }
    // Daisy cleaning shared by DaisyH and DaisyP. The Table 5 workload is
    // 4 SP queries accessing the whole dataset; CleanAllRemaining is the
    // equivalent end state.
    GeneratedData data = GenerateHospital(config);
    Database db;
    CheckOk(db.AddTable(std::move(data.dirty)), "add hospital");
    Table* table = db.GetTable("hospital").ValueOrDie();
    DaisyEngine engine(&db, RuleSubset(table->schema(), nrules),
                       DaisyOptions{});
    CheckOk(engine.Prepare(), "prepare");
    CheckOk(engine.CleanAllRemaining(), "clean");

    {  // DaisyH.
      std::vector<std::pair<std::pair<RowId, size_t>, std::vector<Value>>>
          domains;
      for (RowId r = 0; r < table->num_rows(); ++r) {
        for (size_t c = 0; c < table->num_columns(); ++c) {
          if (table->cell(r, c).is_probabilistic()) {
            domains.push_back({{r, c}, table->cell(r, c).PossibleValues()});
          }
        }
      }
      ConstraintSet rules = RuleSubset(table->schema(), nrules);
      HoloCleanSim sim(table, &rules, HoloOptions{});
      auto repairs =
          UnwrapOrDie(sim.InferWithDomains(domains), "daisyH inference");
      PrintRow(nrules, "daisyH",
               UnwrapOrDie(EvaluateCellRepairs(*table, data.truth, repairs),
                           "metrics"));
    }
    PrintRow(nrules, "daisyP",
             UnwrapOrDie(EvaluateTableRepairs(*table, data.truth), "metrics"));
  }
  return 0;
}
