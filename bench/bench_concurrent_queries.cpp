// Concurrent query serving: read-path throughput at 1/2/4/8 client
// threads, plus morsel-parallel filter latency at 1/2/4/8 workers.
//
// Setup: a 50k-row salary/tax relation under one order DC and one FD,
// prepared and fully cleaned, so every measured query is quiescent and
// served under the engine's shared reader lock. Leg 1 hammers the engine
// from N client threads and reports queries/sec (the 1-thread row is the
// no-regression baseline against the pre-concurrency engine: same plan,
// one uncontended shared-lock acquire per query). Leg 2 runs one client
// with DaisyOptions::query_threads = N so a single heavy scan+filter fans
// morsels across the worker pool.
//
// Wall-clock scaling requires physical cores; on a 1-CPU container the
// rows stay flat but the protocol overhead is still visible in the
// 1-thread row.
//
// Two robustness legs ride along (emitted to BENCH_concurrent_queries.json
// with everything else): degraded-read-only serving — the same read mix
// against an engine whose persistence failed mid-checkpoint, which must
// serve at essentially healthy throughput since reads never touch the I/O
// layer — and the WAL-append Env indirection overhead, comparing ingest
// through the default POSIX Env against the counting FaultInjectingEnv
// with no faults armed (the virtual-dispatch + accounting cost; the ratio
// should be ~1).
//
// The writer legs measure group commit (DaisyOptions::group_commit):
// N client threads issue single-row appends against a persistence-backed
// rule-free table, once with per-op write+fsync and once with the shared
// batching queue. Each row reports ops/sec, fsyncs/op from per-leg deltas
// of the daisy_persist_* metrics registry counters (the same instruments
// the Metrics RPC exposes), and speedup_vs_off — at 4+ clients the batched rows are
// expected to clear 2x the per-op-fsync baseline, since concurrent ops
// share one fsync instead of queueing for their own. A durability audit
// closes the section: group-commit writers race injected fsync failures
// at several schedule points, and every op acked before the engine
// degraded must be present exactly once after reopening from disk
// (acked_but_lost is asserted zero, not just reported).

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "persist/fault_env.h"

using namespace daisy;
using namespace daisy::bench;

namespace {

constexpr size_t kRows = 50000;
constexpr size_t kQueriesPerThread = 40;

Table BaseTable(uint64_t seed) {
  Rng rng(seed);
  Table t("emp", Schema({{"salary", ValueType::kDouble},
                         {"tax", ValueType::kDouble},
                         {"dept", ValueType::kInt}}));
  t.Reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    const double salary = rng.UniformDouble(1000, 100000);
    double tax = salary / 200000.0;
    if (rng.Bernoulli(0.001)) tax += rng.UniformDouble(0.1, 0.5);
    CheckOk(t.AppendRow({Value(salary), Value(tax),
                         Value(rng.UniformInt(0, 50))}),
            "append base row");
  }
  return t;
}

std::unique_ptr<DaisyEngine> MakeCleanEngine(Database* db,
                                             size_t query_threads) {
  ConstraintSet rules;
  const Table* t = UnwrapOrDie(
      static_cast<const Database*>(db)->GetTable("emp"), "get emp");
  CheckOk(rules.AddFromText("dc: !(t1.salary < t2.salary & t1.tax > t2.tax)",
                            "emp", t->schema()),
          "parse dc");
  DaisyOptions options;
  options.theta_partitions = 64;
  options.query_threads = query_threads;
  auto engine = std::make_unique<DaisyEngine>(db, std::move(rules), options);
  CheckOk(engine->Prepare(), "Prepare");
  CheckOk(engine->CleanAllRemaining(), "CleanAllRemaining");
  return engine;
}

std::string QueryFor(size_t i) {
  // Rotating selectivities so the result sizes vary like a real read mix.
  static const char* kThresholds[] = {"25000", "50000", "75000", "90000"};
  return std::string("SELECT salary, tax FROM emp WHERE salary >= ") +
         kThresholds[i % 4];
}

void ClientThread(DaisyEngine* engine, size_t* served) {
  for (size_t i = 0; i < kQueriesPerThread; ++i) {
    QueryReport report =
        UnwrapOrDie(engine->Query(QueryFor(i)), "read query");
    if (!report.read_path) {
      std::fprintf(stderr, "[bench] query left the shared read path\n");
      std::exit(1);
    }
    ++*served;
  }
}

/// Fresh /tmp scratch directory for the persistence-backed legs.
std::string ScratchDir() {
  char tmpl[] = "/tmp/daisy_bench_concurrent_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fprintf(stderr, "[bench] mkdtemp failed\n");
    std::exit(1);
  }
  return std::string(dir);
}

}  // namespace

int main() {
  WarmupHeap();
  BenchJsonWriter json("concurrent_queries");

  std::printf("# Concurrent read serving: %zu-row table, fully cleaned, "
              "%zu queries/thread\n",
              kRows, kQueriesPerThread);
  std::printf("# %-16s %10s %10s %12s %9s\n", "clients", "queries",
              "wall_s", "queries/s", "speedup");
  double base_qps = 0;
  for (size_t clients : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    Database db;
    CheckOk(db.AddTable(BaseTable(7)), "add table");
    std::unique_ptr<DaisyEngine> engine = MakeCleanEngine(&db, 1);
    // One warm query so the first measured one pays no cold output path.
    (void)UnwrapOrDie(engine->Query(QueryFor(0)), "warm query");

    std::vector<size_t> served(clients, 0);
    Timer timer;
    std::vector<std::thread> pool;
    pool.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      pool.emplace_back(ClientThread, engine.get(), &served[c]);
    }
    for (std::thread& t : pool) t.join();
    const double wall = timer.ElapsedSeconds();
    size_t total = 0;
    for (size_t s : served) total += s;
    const double qps = static_cast<double>(total) / wall;
    if (clients == 1) base_qps = qps;
    std::printf("  %-16zu %10zu %10.3f %12.1f %8.2fx\n", clients, total,
                wall, qps, qps / base_qps);
    BenchResult r;
    r.name = "read_serving_clients_" + std::to_string(clients);
    r.wall_ms = wall * 1000;
    r.counters = {{"queries", static_cast<double>(total)},
                  {"queries_per_s", qps},
                  {"speedup_vs_1", qps / base_qps}};
    json.Add(std::move(r));
  }

  std::printf("\n# Morsel-parallel filter: one client, "
              "query_threads workers per scan\n");
  std::printf("# %-16s %10s %12s %9s\n", "query_threads", "wall_s",
              "queries/s", "speedup");
  double base_morsel_qps = 0;
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    Database db;
    CheckOk(db.AddTable(BaseTable(7)), "add table");
    std::unique_ptr<DaisyEngine> engine = MakeCleanEngine(&db, workers);
    (void)UnwrapOrDie(engine->Query(QueryFor(0)), "warm query");

    Timer timer;
    size_t served = 0;
    ClientThread(engine.get(), &served);
    const double wall = timer.ElapsedSeconds();
    const double qps = static_cast<double>(served) / wall;
    if (workers == 1) base_morsel_qps = qps;
    std::printf("  %-16zu %10.3f %12.1f %8.2fx\n", workers, wall, qps,
                qps / base_morsel_qps);
    BenchResult r;
    r.name = "morsel_filter_workers_" + std::to_string(workers);
    r.wall_ms = wall * 1000;
    r.counters = {{"queries_per_s", qps},
                  {"speedup_vs_1", qps / base_morsel_qps}};
    json.Add(std::move(r));
  }

  // ----------------------------------------- degraded-read-only serving --
  // Persistence dies mid-checkpoint (injected fsync failure), the engine
  // degrades to read-only, and the same read mix keeps hammering it: reads
  // never touch the Env, so throughput should track the healthy 1-thread
  // row. The health gate is one branch per query.
  std::printf("\n# Degraded-read-only serving: reads after a failed "
              "checkpoint (writers rejected)\n");
  std::printf("# %-16s %10s %12s %14s\n", "clients", "wall_s", "queries/s",
              "vs_healthy_1t");
  for (size_t clients : {size_t{1}, size_t{4}}) {
    Database db;
    CheckOk(db.AddTable(BaseTable(7)), "add table");
    persist::FaultInjectingEnv fenv;  // must outlive the engine's WAL file
    std::unique_ptr<DaisyEngine> engine = MakeCleanEngine(&db, 1);
    CheckOk(engine->EnablePersistence(ScratchDir() + "/state", &fenv),
            "enable persistence");
    fenv.FailNthSync(fenv.syncs() + 1, EIO);
    if (engine->Checkpoint().ok()) {
      std::fprintf(stderr, "[bench] checkpoint survived injected fault\n");
      return 1;
    }
    if (engine->Health().state != EngineHealth::kDegradedReadOnly) {
      std::fprintf(stderr, "[bench] engine did not degrade\n");
      return 1;
    }
    (void)UnwrapOrDie(engine->Query(QueryFor(0)), "warm query");

    std::vector<size_t> served(clients, 0);
    Timer timer;
    std::vector<std::thread> pool;
    pool.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      pool.emplace_back(ClientThread, engine.get(), &served[c]);
    }
    for (std::thread& t : pool) t.join();
    const double wall = timer.ElapsedSeconds();
    size_t total = 0;
    for (size_t s : served) total += s;
    const double qps = static_cast<double>(total) / wall;
    std::printf("  %-16zu %10.3f %12.1f %13.2fx\n", clients, wall, qps,
                qps / base_qps);
    BenchResult r;
    r.name = "degraded_read_only_clients_" + std::to_string(clients);
    r.wall_ms = wall * 1000;
    r.counters = {{"queries_per_s", qps},
                  {"ratio_vs_healthy_1t", qps / base_qps}};
    r.config = {{"health", "degraded-read-only"}};
    json.Add(std::move(r));
  }

  // -------------------------------------- WAL-append Env indirection -----
  // Ingest through the default POSIX Env vs the counting FaultInjectingEnv
  // with no faults armed. The table has no rules, so each AppendRows is
  // table mutation + WAL encode/append/fsync — the leg isolates the I/O
  // path the indirection wrapped.
  std::printf("\n# WAL-append Env indirection: %d appends x %d rows, "
              "rule-free table\n", 400, 32);
  std::printf("# %-16s %10s %12s %9s\n", "env", "wall_s", "appends/s",
              "ratio");
  constexpr size_t kAppendBatches = 400;
  constexpr size_t kAppendBatchRows = 32;
  double default_env_aps = 0;
  for (const bool faulting : {false, true}) {
    Database db;
    Table t("log", Schema({{"k", ValueType::kInt}, {"x", ValueType::kDouble}}));
    CheckOk(db.AddTable(std::move(t)), "add log table");
    persist::FaultInjectingEnv fenv;  // must outlive the engine's WAL file
    auto engine =
        std::make_unique<DaisyEngine>(&db, ConstraintSet{}, DaisyOptions{});
    CheckOk(engine->Prepare(), "prepare");
    CheckOk(engine->EnablePersistence(ScratchDir() + "/state",
                                      faulting ? &fenv : nullptr),
            "enable persistence");
    Rng rng(11);
    Timer timer;
    for (size_t i = 0; i < kAppendBatches; ++i) {
      std::vector<std::vector<Value>> rows;
      rows.reserve(kAppendBatchRows);
      for (size_t j = 0; j < kAppendBatchRows; ++j) {
        rows.push_back({Value(static_cast<int64_t>(i * kAppendBatchRows + j)),
                        Value(rng.UniformDouble(0, 1))});
      }
      (void)UnwrapOrDie(engine->AppendRows("log", std::move(rows)),
                        "append batch");
    }
    const double wall = timer.ElapsedSeconds();
    const double aps = static_cast<double>(kAppendBatches) / wall;
    if (!faulting) default_env_aps = aps;
    std::printf("  %-16s %10.3f %12.1f %8.2fx\n",
                faulting ? "fault_env" : "posix_default", wall, aps,
                aps / default_env_aps);
    BenchResult r;
    r.name = std::string("wal_append_env_") +
             (faulting ? "fault_counting" : "posix_default");
    r.wall_ms = wall * 1000;
    r.counters = {{"appends_per_s", aps},
                  {"ratio_vs_default", aps / default_env_aps}};
    json.Add(std::move(r));
  }

  // ------------------------------------------ group-commit writer ops ----
  // N client threads append one row each per op against a rule-free
  // persistence-backed table: the op is WAL encode + append + fsync, i.e.
  // exactly what daisyd does per Append frame. group_commit=false pays one
  // write+fsync per op serialized behind the writer lock; group_commit=true
  // lets concurrent ops share one frame write + one fsync. fsyncs/op comes
  // from per-leg deltas of the process metrics registry (snapshot before
  // the workload, subtract after — the same daisy_persist_wal_* counters
  // the Metrics RPC serves), so the amortization is visible in the JSON,
  // not just inferred from wall time.
  std::printf("\n# Group-commit writers: single-row appends, rule-free "
              "table, %zu ops/client\n", size_t{200});
  std::printf("# %-8s %-13s %10s %12s %11s %10s %9s\n", "clients",
              "group_commit", "wall_s", "ops/s", "fsyncs/op", "max_batch",
              "speedup");
  constexpr size_t kWriterOps = 200;  // per client
  for (size_t clients : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    double off_ops_per_s = 0;
    for (const bool gc : {false, true}) {
      Database db;
      Table t("log",
              Schema({{"k", ValueType::kInt}, {"x", ValueType::kDouble}}));
      CheckOk(db.AddTable(std::move(t)), "add log table");
      DaisyOptions options;
      options.group_commit = gc;
      auto engine =
          std::make_unique<DaisyEngine>(&db, ConstraintSet{}, options);
      CheckOk(engine->Prepare(), "prepare");
      CheckOk(engine->EnablePersistence(ScratchDir() + "/state", nullptr),
              "enable persistence");

      // Snapshot after EnablePersistence so recovery/bootstrap I/O stays
      // out of the leg's delta; only the measured appends remain.
      RegistryCounterDelta reg;
      Timer timer;
      std::vector<std::thread> pool;
      pool.reserve(clients);
      for (size_t c = 0; c < clients; ++c) {
        pool.emplace_back([&engine, c] {
          for (size_t i = 0; i < kWriterOps; ++i) {
            std::vector<std::vector<Value>> rows;
            rows.push_back(
                {Value(static_cast<int64_t>(c * kWriterOps + i)),
                 Value(0.5)});
            (void)UnwrapOrDie(engine->AppendRows("log", std::move(rows)),
                              "writer append");
          }
        });
      }
      for (std::thread& th : pool) th.join();
      const double wall = timer.ElapsedSeconds();

      const uint64_t syncs = reg.Delta("daisy_persist_wal_fsyncs_total");
      const uint64_t records = reg.Delta("daisy_persist_wal_records_total");
      // max batch size is a distribution property, not a count; it still
      // comes from the engine's WalCommitStats.
      const persist::WalCommitStats stats = engine->WalStats();
      const double ops = static_cast<double>(clients * kWriterOps);
      const double ops_per_s = ops / wall;
      const double fsyncs_per_op = static_cast<double>(syncs) / ops;
      if (!gc) off_ops_per_s = ops_per_s;
      const double speedup = ops_per_s / off_ops_per_s;
      std::printf("  %-8zu %-13s %10.3f %12.1f %11.3f %10zu %8.2fx\n",
                  clients, gc ? "on" : "off", wall, ops_per_s, fsyncs_per_op,
                  static_cast<size_t>(stats.max_batch_records), speedup);
      BenchResult r;
      r.name = "group_commit_writers_" + std::to_string(clients) +
               (gc ? "_on" : "_off");
      r.wall_ms = wall * 1000;
      r.counters = {{"ops", ops},
                    {"ops_per_s", ops_per_s},
                    {"fsyncs_per_op", fsyncs_per_op},
                    {"wal_syncs", static_cast<double>(syncs)},
                    {"wal_records", static_cast<double>(records)},
                    {"max_batch_records",
                     static_cast<double>(stats.max_batch_records)},
                    {"speedup_vs_off", speedup}};
      r.config = {{"group_commit", gc ? "on" : "off"}};
      json.Add(std::move(r));
    }
  }

  // --------------------------- durability audit: acked ops vs faults -----
  // Group-commit writers race an injected fsync failure at several points
  // in the sync schedule. An op whose AppendRows returned OK was acked
  // durable; after the engine degrades, the store is reopened from disk
  // and every acked key must be present exactly once. acked_but_lost is a
  // correctness counter — any nonzero value fails the bench outright.
  std::printf("\n# Durability audit: acked group-commit ops vs injected "
              "sync failures\n");
  std::printf("# %-10s %10s %12s %14s\n", "fail_sync", "acked",
              "recovered", "acked_but_lost");
  size_t total_acked = 0;
  size_t total_lost = 0;
  for (const uint64_t fail_at : {uint64_t{4}, uint64_t{17}, uint64_t{61}}) {
    const std::string dir = ScratchDir() + "/state";
    persist::FaultInjectingEnv fenv;
    std::set<int64_t> acked;
    std::mutex acked_mu;
    {
      Database db;
      Table t("log",
              Schema({{"k", ValueType::kInt}, {"x", ValueType::kDouble}}));
      CheckOk(db.AddTable(std::move(t)), "add log table");
      auto engine =
          std::make_unique<DaisyEngine>(&db, ConstraintSet{}, DaisyOptions{});
      CheckOk(engine->Prepare(), "prepare");
      CheckOk(engine->EnablePersistence(dir, &fenv), "enable persistence");
      fenv.FailNthSync(fenv.syncs() + fail_at, EIO);

      constexpr size_t kAuditClients = 4;
      constexpr size_t kAuditOps = 50;
      std::vector<std::thread> pool;
      pool.reserve(kAuditClients);
      for (size_t c = 0; c < kAuditClients; ++c) {
        pool.emplace_back([&engine, &acked, &acked_mu, c] {
          for (size_t i = 0; i < kAuditOps; ++i) {
            const int64_t key = static_cast<int64_t>(c * kAuditOps + i);
            std::vector<std::vector<Value>> rows;
            rows.push_back({Value(key), Value(0.5)});
            if (!engine->AppendRows("log", std::move(rows)).ok()) break;
            std::lock_guard<std::mutex> lock(acked_mu);
            acked.insert(key);
          }
        });
      }
      for (std::thread& th : pool) th.join();
    }

    Database recovered_db;
    std::unique_ptr<DaisyEngine> reopened = UnwrapOrDie(
        DaisyEngine::Open(dir, &recovered_db), "reopen after fault");
    QueryReport report =
        UnwrapOrDie(reopened->Query("SELECT k FROM log"), "audit query");
    std::multiset<int64_t> recovered;
    for (size_t row = 0; row < report.output.result.num_rows(); ++row) {
      recovered.insert(
          report.output.result.cell(row, 0).MostProbable().as_int());
    }
    size_t lost = 0;
    for (const int64_t key : acked) {
      if (recovered.count(key) != 1) ++lost;
    }
    std::printf("  %-10zu %10zu %12zu %14zu\n",
                static_cast<size_t>(fail_at), acked.size(), recovered.size(),
                lost);
    total_acked += acked.size();
    total_lost += lost;
    BenchResult r;
    r.name = "group_commit_fault_audit_sync_" + std::to_string(fail_at);
    r.counters = {{"acked_ops", static_cast<double>(acked.size())},
                  {"recovered_rows", static_cast<double>(recovered.size())},
                  {"acked_but_lost", static_cast<double>(lost)}};
    json.Add(std::move(r));
  }
  if (total_lost != 0) {
    std::fprintf(stderr, "[bench] %zu acked ops lost across the fault "
                 "sweep (of %zu acked)\n", total_lost, total_acked);
    return 1;
  }
  return 0;
}
